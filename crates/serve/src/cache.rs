//! Sharded, content-addressed outcome cache with non-blocking
//! single-flight deduplication.
//!
//! The cache maps a canonical request key
//! ([`mcds_core::request_key`]) to the published scheduling outcome.
//! Keys are routed to one of N power-of-two **shards** by their
//! high-order prefix bits, each shard behind its own lock — warm hits
//! from many connections never contend on a single mutex.
//!
//! Single-flight is *ticket-based*, designed for the reactor: a
//! [`lookup`](OutcomeCache::lookup) never blocks. The first requester
//! of a key becomes the leader ([`Lookup::Lead`]) and computes; a
//! concurrent requester registers an opaque waiter token and returns
//! immediately ([`Lookup::Wait`]). When the leader
//! [`fulfill`](FlightGuard::fulfill)s, every registered token is handed
//! back so the caller (the reactor) can answer those requests as cache
//! hits; when the leader [`abandon`](FlightGuard::abandon)s, the tokens
//! come back so the waiters can be failed with a typed, retryable
//! error instead of hanging.
//!
//! Both successes and deterministic scheduling errors (e.g. "infeasible
//! at this memory size") are cached — they are pure functions of the
//! request. Abandoned runs (deadline exceeded, injected faults, worker
//! panics) are *never* cached: the leader's guard removes the in-flight
//! entry so a later request with a longer deadline recomputes instead
//! of inheriting the short deadline's failure.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use mcds_core::PreparedSchedule;

use crate::protocol::{ErrorCode, Outcome};

/// Opaque waiter identity, packed by the caller (the reactor packs
/// connection slot coordinates into it). The cache only stores and
/// returns tokens; it never interprets them.
pub type Token = u64;

/// A cached failure: the typed code plus the human diagnostic. Only
/// deterministic failures ([`ErrorCode::BadRequest`]) are ever stored;
/// transient ones bypass the cache entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedError {
    /// Machine-readable classification.
    pub code: ErrorCode,
    /// Human-oriented diagnostic.
    pub message: String,
}

/// One published cache entry: the result plus — for successes — the
/// outcome pre-serialized once at publish time, so the reactor's hit
/// path splices bytes instead of re-serializing per response.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedEntry {
    /// The published result.
    pub result: Result<Outcome, CachedError>,
    outcome_json: Option<String>,
}

impl CachedEntry {
    /// A successful entry; serializes the outcome once, here.
    #[must_use]
    pub fn ok(outcome: Outcome) -> CachedEntry {
        let json = serde_json::to_string(&outcome).expect("outcomes serialize");
        CachedEntry {
            result: Ok(outcome),
            outcome_json: Some(json),
        }
    }

    /// A deterministic-failure entry.
    #[must_use]
    pub fn err(code: ErrorCode, message: impl Into<String>) -> CachedEntry {
        CachedEntry {
            result: Err(CachedError {
                code,
                message: message.into(),
            }),
            outcome_json: None,
        }
    }

    /// A successful entry rebuilt from its journaled JSON. The exact
    /// journaled string is kept as the pre-serialized form, so a
    /// recovered entry serves back the *same bytes* that were
    /// originally published — the byte-identity contract the crash
    /// drill pins.
    pub fn from_json(json: String) -> Result<CachedEntry, serde_json::Error> {
        let outcome: Outcome = serde_json::from_str(&json)?;
        Ok(CachedEntry {
            result: Ok(outcome),
            outcome_json: Some(json),
        })
    }

    /// The pre-serialized outcome JSON (`None` for failure entries).
    #[must_use]
    pub fn outcome_json(&self) -> Option<&str> {
        self.outcome_json.as_deref()
    }
}

/// A published result, shared across every requester of its key.
pub type CachedResult = Arc<CachedEntry>;

/// The cache key a request's *degraded* outcome lives under: a salted
/// permutation of its canonical key. Degraded results (within-cluster
/// scheduler fallback) must never alias the full-quality result, so a
/// later request with a generous deadline still computes the real
/// thing.
#[must_use]
pub fn degraded_key(key: u64) -> u64 {
    mcds_core::splitmix64(key ^ 0xDE62_ADED_0000_0001)
}

enum Entry {
    /// A leader is computing; the tokens are the registered waiters.
    InFlight(Vec<Token>),
    Ready(CachedResult),
}

/// What [`OutcomeCache::lookup`] resolved the key to. Never blocks.
pub enum Lookup {
    /// A published result was available — a cache hit.
    Hit(CachedResult),
    /// This caller is the leader: compute, then
    /// [`fulfill`](FlightGuard::fulfill) or
    /// [`abandon`](FlightGuard::abandon) the guard.
    Lead(FlightGuard),
    /// Another requester is already computing this key; the caller's
    /// token was registered and will be returned by the leader's
    /// fulfill/abandon (or by [`OutcomeCache::take_orphans`] if the
    /// leader died).
    Wait,
}

/// The leader's obligation: exactly one of
/// [`fulfill`](Self::fulfill) / [`abandon`](Self::abandon), both of
/// which hand back the waiter tokens that accumulated during the
/// computation. Dropping the guard without either (worker panic that
/// escaped `catch_unwind`) clears the flight and parks the waiters on
/// the orphan list, so they can still be failed instead of hanging.
pub struct FlightGuard {
    cache: Arc<OutcomeCache>,
    key: u64,
    done: bool,
}

impl FlightGuard {
    /// The key this flight computes.
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Publishes the result for every current and future requester.
    /// Returns the shared entry and the tokens of every waiter that
    /// registered while the computation ran — answer each as a hit.
    pub fn fulfill(mut self, entry: CachedEntry) -> (CachedResult, Vec<Token>) {
        self.done = true;
        let shared = Arc::new(entry);
        let mut map = self.cache.shard(self.key).lock().expect("cache shard lock");
        let waiters = match map.insert(self.key, Entry::Ready(Arc::clone(&shared))) {
            Some(Entry::InFlight(waiters)) => waiters,
            _ => Vec::new(),
        };
        drop(map);
        (shared, waiters)
    }

    /// Removes the in-flight entry without publishing — the run was
    /// abandoned and must not poison the cache. Returns the registered
    /// waiter tokens; the caller must fail each with a typed,
    /// retryable error (a fresh request for the key leads a new
    /// flight).
    #[must_use]
    pub fn abandon(mut self) -> Vec<Token> {
        self.done = true;
        self.cache.remove_in_flight(self.key)
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if !self.done {
            let waiters = self.cache.remove_in_flight(self.key);
            self.cache
                .orphans
                .lock()
                .expect("orphan lock")
                .push((self.key, waiters));
        }
    }
}

/// One memoized analysis entry: in flight (a worker is preparing it) or
/// ready to reuse.
enum AnalysisSlot {
    InFlight,
    Ready(Arc<PreparedSchedule>),
}

/// One shard of the analysis family: its own map and its own condvar
/// for the blocking single-flight protocol.
struct AnalysisShard {
    map: Mutex<HashMap<u64, AnalysisSlot>>,
    cv: Condvar,
}

/// What [`OutcomeCache::analysis_lookup`] resolved a structure key to.
///
/// Unlike the outcome family's token-based [`Lookup`], this protocol
/// *blocks* concurrent requesters: the callers are worker threads (not
/// the reactor), and an analysis in flight resolves in milliseconds, so
/// parking the worker on the shard's condvar is simpler and strictly
/// better than re-running the analysis.
pub enum AnalysisLookup {
    /// A memoized analysis was available (possibly after a short wait
    /// for the in-flight leader) — the arch-only fast path.
    Hit(Arc<PreparedSchedule>),
    /// This worker is the leader: prepare the analysis, then
    /// [`fulfill`](AnalysisGuard::fulfill) the guard. Dropping the
    /// guard without fulfilling (preparation failed or panicked) clears
    /// the flight and wakes the waiters, which re-elect a leader.
    Lead(AnalysisGuard),
}

/// The analysis leader's obligation; see [`AnalysisLookup::Lead`].
pub struct AnalysisGuard {
    cache: Arc<OutcomeCache>,
    skey: u64,
    done: bool,
}

impl AnalysisGuard {
    /// The structure key this flight prepares.
    #[must_use]
    pub fn structure_key(&self) -> u64 {
        self.skey
    }

    /// Publishes the prepared analysis for every current and future
    /// requester of this structure key and wakes the blocked waiters.
    pub fn fulfill(mut self, prepared: Arc<PreparedSchedule>) {
        self.done = true;
        let shard = self.cache.analysis_shard(self.skey);
        shard
            .map
            .lock()
            .expect("analysis shard lock")
            .insert(self.skey, AnalysisSlot::Ready(prepared));
        shard.cv.notify_all();
    }
}

impl Drop for AnalysisGuard {
    fn drop(&mut self) {
        if !self.done {
            let shard = self.cache.analysis_shard(self.skey);
            let mut map = shard.map.lock().expect("analysis shard lock");
            if matches!(map.get(&self.skey), Some(AnalysisSlot::InFlight)) {
                map.remove(&self.skey);
            }
            drop(map);
            shard.cv.notify_all();
        }
    }
}

/// Default shard count — plenty for the worker/connection counts this
/// daemon runs with, small enough that an empty cache stays cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// The sharded cache. Shared across the reactor and worker threads via
/// `Arc`.
pub struct OutcomeCache {
    shards: Box<[Mutex<HashMap<u64, Entry>>]>,
    /// The analysis family: one shard per outcome shard, keyed by
    /// *structure* key and holding memoized
    /// [`PreparedSchedule`]s instead of outcomes.
    analysis: Box<[AnalysisShard]>,
    /// `log2(shards.len())` — the key's top `bits` bits select the
    /// shard.
    bits: u32,
    orphans: Mutex<Vec<(u64, Vec<Token>)>>,
}

impl OutcomeCache {
    /// An empty cache with [`DEFAULT_SHARDS`] shards.
    #[must_use]
    pub fn new() -> Arc<Self> {
        OutcomeCache::with_shards(DEFAULT_SHARDS)
    }

    /// An empty cache with `n` shards, rounded up to the next power of
    /// two and clamped to `[1, 1024]`.
    #[must_use]
    pub fn with_shards(n: usize) -> Arc<Self> {
        let n = n.clamp(1, 1024).next_power_of_two();
        Arc::new(OutcomeCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            analysis: (0..n)
                .map(|_| AnalysisShard {
                    map: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            bits: n.trailing_zeros(),
            orphans: Mutex::new(Vec::new()),
        })
    }

    /// The shard count (a power of two).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `key` routes to: the key's high-order prefix bits.
    /// Stable for a given key and shard count — the routing contract
    /// the shard tests pin.
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        if self.bits == 0 {
            0
        } else {
            (key >> (64 - self.bits)) as usize
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Entry>> {
        &self.shards[self.shard_of(key)]
    }

    fn analysis_shard(&self, skey: u64) -> &AnalysisShard {
        &self.analysis[self.shard_of(skey)]
    }

    /// Resolves a *structure* key to its memoized
    /// [`PreparedSchedule`], blocking briefly if another worker is
    /// preparing it right now. The first requester becomes the leader
    /// and must [`fulfill`](AnalysisGuard::fulfill) (or drop) the
    /// returned guard. See [`AnalysisLookup`] for why this family
    /// blocks where the outcome family uses waiter tokens.
    #[must_use]
    pub fn analysis_lookup(self: &Arc<Self>, skey: u64) -> AnalysisLookup {
        let shard = self.analysis_shard(skey);
        let mut map = shard.map.lock().expect("analysis shard lock");
        loop {
            match map.get(&skey) {
                Some(AnalysisSlot::Ready(p)) => return AnalysisLookup::Hit(Arc::clone(p)),
                Some(AnalysisSlot::InFlight) => {
                    map = shard.cv.wait(map).expect("analysis shard lock");
                }
                None => {
                    map.insert(skey, AnalysisSlot::InFlight);
                    return AnalysisLookup::Lead(AnalysisGuard {
                        cache: Arc::clone(self),
                        skey,
                        done: false,
                    });
                }
            }
        }
    }

    /// Memoized analysis count across all shards (in-flight slots
    /// excluded).
    #[must_use]
    pub fn analysis_len(&self) -> usize {
        self.analysis
            .iter()
            .map(|s| {
                s.map
                    .lock()
                    .expect("analysis shard lock")
                    .values()
                    .filter(|e| matches!(e, AnalysisSlot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Resolves `key` without blocking: an immediate hit, leadership of
    /// the first computation, or registration of `token` as a waiter on
    /// the in-flight computation.
    #[must_use]
    pub fn lookup(self: &Arc<Self>, key: u64, token: Token) -> Lookup {
        let mut map = self.shard(key).lock().expect("cache shard lock");
        match map.get_mut(&key) {
            Some(Entry::Ready(r)) => Lookup::Hit(Arc::clone(r)),
            Some(Entry::InFlight(waiters)) => {
                waiters.push(token);
                Lookup::Wait
            }
            None => {
                map.insert(key, Entry::InFlight(Vec::new()));
                Lookup::Lead(FlightGuard {
                    cache: Arc::clone(self),
                    key,
                    done: false,
                })
            }
        }
    }

    /// A read-only peek: the published entry, if any. Never leads and
    /// never registers — the warm fast path when the caller cannot
    /// take on a leader's obligations.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<CachedResult> {
        match self.shard(key).lock().expect("cache shard lock").get(&key) {
            Some(Entry::Ready(r)) => Some(Arc::clone(r)),
            _ => None,
        }
    }

    /// Deregisters `token` from `key`'s in-flight waiter list — the
    /// waiter's own deadline expired. `true` when the token was still
    /// registered (the caller should fail the request);
    /// `false` when the flight already resolved (the token was, or is
    /// about to be, answered by the leader's completion).
    pub fn cancel_wait(&self, key: u64, token: Token) -> bool {
        let mut map = self.shard(key).lock().expect("cache shard lock");
        if let Some(Entry::InFlight(waiters)) = map.get_mut(&key) {
            if let Some(pos) = waiters.iter().position(|&t| t == token) {
                waiters.swap_remove(pos);
                return true;
            }
        }
        false
    }

    /// Publishes a result directly, without leading a flight — used by
    /// the degraded fallback path, which computes under the *degraded*
    /// key while the primary key's flight is abandoned. Overwrites any
    /// existing entry (results are deterministic, so a racing leader
    /// publishes the identical value) and returns any waiters that had
    /// registered on an in-flight entry for this key.
    pub fn publish(&self, key: u64, entry: CachedEntry) -> (CachedResult, Vec<Token>) {
        let shared = Arc::new(entry);
        let mut map = self.shard(key).lock().expect("cache shard lock");
        let waiters = match map.insert(key, Entry::Ready(Arc::clone(&shared))) {
            Some(Entry::InFlight(waiters)) => waiters,
            _ => Vec::new(),
        };
        drop(map);
        (shared, waiters)
    }

    /// Drains flights whose guard was dropped without fulfill/abandon
    /// (a worker died ungracefully). The caller fails each returned
    /// waiter with a typed, retryable error.
    #[must_use]
    pub fn take_orphans(&self) -> Vec<(u64, Vec<Token>)> {
        std::mem::take(&mut *self.orphans.lock().expect("orphan lock"))
    }

    /// Published entry count across all shards (in-flight entries
    /// excluded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache shard lock")
                    .values()
                    .filter(|e| matches!(e, Entry::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// `true` when nothing has been published yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every published `(key, entry)` pair, sorted by key — the
    /// snapshot-compaction dump. In-flight entries are skipped (they
    /// have nothing durable to say yet); sorting makes the snapshot
    /// file a deterministic function of the cache contents.
    #[must_use]
    pub fn entries(&self) -> Vec<(u64, CachedResult)> {
        let mut all: Vec<(u64, CachedResult)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("cache shard lock")
                    .iter()
                    .filter_map(|(&k, e)| match e {
                        Entry::Ready(r) => Some((k, Arc::clone(r))),
                        Entry::InFlight(_) => None,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable_by_key(|&(k, _)| k);
        all
    }

    fn remove_in_flight(&self, key: u64) -> Vec<Token> {
        let mut map = self.shard(key).lock().expect("cache shard lock");
        // Only clear our own in-flight marker: a racing re-publish
        // (cannot normally happen, but cheap to guard) stays.
        if matches!(map.get(&key), Some(Entry::InFlight(_))) {
            if let Some(Entry::InFlight(waiters)) = map.remove(&key) {
                return waiters;
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(cycles: u64) -> Outcome {
        Outcome {
            app: "t".to_owned(),
            scheduler: "cds".to_owned(),
            clusters: 1,
            rf: 1,
            dt_avoided_words: 0,
            data_words: 0,
            context_words: 0,
            total_cycles: cycles,
            degraded: false,
        }
    }

    #[test]
    fn first_leads_then_hits() {
        let cache = OutcomeCache::new();
        let Lookup::Lead(guard) = cache.lookup(7, 0) else {
            panic!("empty cache: first requester leads");
        };
        let (_, waiters) = guard.fulfill(CachedEntry::ok(outcome(10)));
        assert!(waiters.is_empty(), "nobody waited");
        let Lookup::Hit(r) = cache.lookup(7, 1) else {
            panic!("published entry: second requester hits");
        };
        assert_eq!(r.result.as_ref().expect("ok").total_cycles, 10);
        assert!(r
            .outcome_json()
            .expect("pre-serialized")
            .contains("\"total_cycles\":10"));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(7).is_some(), "peek sees the entry");
        assert!(cache.get(8).is_none(), "peek never leads");
        assert!(matches!(cache.lookup(8, 2), Lookup::Lead(_)));
    }

    #[test]
    fn deterministic_errors_are_cached_too() {
        let cache = OutcomeCache::new();
        let Lookup::Lead(guard) = cache.lookup(1, 0) else {
            panic!("leads");
        };
        guard.fulfill(CachedEntry::err(ErrorCode::BadRequest, "infeasible"));
        let Lookup::Hit(r) = cache.lookup(1, 1) else {
            panic!("hits");
        };
        let err = r.result.as_ref().expect_err("cached failure");
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert_eq!(err.message, "infeasible");
        assert!(r.outcome_json().is_none());
    }

    #[test]
    fn waiters_are_returned_on_fulfill() {
        let cache = OutcomeCache::new();
        let Lookup::Lead(guard) = cache.lookup(3, 100) else {
            panic!("leads");
        };
        for token in [101, 102, 103] {
            assert!(matches!(cache.lookup(3, token), Lookup::Wait));
        }
        let (shared, mut waiters) = guard.fulfill(CachedEntry::ok(outcome(42)));
        waiters.sort_unstable();
        assert_eq!(waiters, vec![101, 102, 103]);
        assert_eq!(shared.result.as_ref().expect("ok").total_cycles, 42);
    }

    #[test]
    fn abandon_returns_waiters_and_clears_the_flight() {
        let cache = OutcomeCache::new();
        let Lookup::Lead(guard) = cache.lookup(2, 7) else {
            panic!("leads");
        };
        assert!(matches!(cache.lookup(2, 8), Lookup::Wait));
        let waiters = guard.abandon();
        assert_eq!(waiters, vec![8]);
        // The next requester leads again instead of hanging or seeing a
        // poisoned entry.
        assert!(matches!(cache.lookup(2, 9), Lookup::Lead(_)));
        assert!(cache.is_empty());
    }

    #[test]
    fn dropped_guards_orphan_their_waiters() {
        let cache = OutcomeCache::new();
        let Lookup::Lead(guard) = cache.lookup(4, 0) else {
            panic!("leads");
        };
        assert!(matches!(cache.lookup(4, 41), Lookup::Wait));
        drop(guard); // panic-safety path: no fulfill, no abandon
        let orphans = cache.take_orphans();
        assert_eq!(orphans, vec![(4, vec![41])]);
        assert!(cache.take_orphans().is_empty(), "drained once");
        assert!(matches!(cache.lookup(4, 42), Lookup::Lead(_)));
    }

    #[test]
    fn cancel_wait_deregisters_exactly_once() {
        let cache = OutcomeCache::new();
        let Lookup::Lead(guard) = cache.lookup(5, 0) else {
            panic!("leads");
        };
        assert!(matches!(cache.lookup(5, 51), Lookup::Wait));
        assert!(matches!(cache.lookup(5, 52), Lookup::Wait));
        assert!(cache.cancel_wait(5, 51), "registered token cancels");
        assert!(!cache.cancel_wait(5, 51), "second cancel is a no-op");
        let (_, waiters) = guard.fulfill(CachedEntry::ok(outcome(1)));
        assert_eq!(waiters, vec![52], "cancelled token is not returned");
        assert!(
            !cache.cancel_wait(5, 52),
            "cancel after resolution reports the race"
        );
    }

    #[test]
    fn publish_overrides_and_returns_pending_waiters() {
        let cache = OutcomeCache::new();
        // Publish under a degraded key while the primary flight is
        // still open: the primary key is untouched.
        let Lookup::Lead(guard) = cache.lookup(8, 0) else {
            panic!("leads");
        };
        let dkey = degraded_key(8);
        assert_ne!(dkey, 8);
        let (_, waiters) = cache.publish(dkey, CachedEntry::ok(outcome(5)));
        assert!(waiters.is_empty());
        let Lookup::Hit(r) = cache.lookup(dkey, 1) else {
            panic!("published degraded entry hits");
        };
        assert_eq!(r.result.as_ref().expect("ok").total_cycles, 5);
        let abandoned = guard.abandon();
        assert!(abandoned.is_empty());
        assert!(
            matches!(cache.lookup(8, 2), Lookup::Lead(_)),
            "primary key stays independent of the degraded entry"
        );
        // Publishing over an in-flight entry hands back its waiters.
        let Lookup::Lead(_guard) = cache.lookup(9, 0) else {
            panic!("leads");
        };
        assert!(matches!(cache.lookup(9, 91), Lookup::Wait));
        let (_, waiters) = cache.publish(9, CachedEntry::ok(outcome(6)));
        assert_eq!(waiters, vec![91]);
    }

    #[test]
    fn shard_routing_is_stable_and_prefix_based() {
        let cache = OutcomeCache::with_shards(16);
        assert_eq!(cache.shard_count(), 16);
        for key in [0u64, 1, 0xdead_beef, u64::MAX, 42 << 60] {
            assert_eq!(cache.shard_of(key), cache.shard_of(key), "stable");
            assert_eq!(cache.shard_of(key), (key >> 60) as usize, "top bits");
        }
        // Rounding and clamping.
        assert_eq!(OutcomeCache::with_shards(0).shard_count(), 1);
        assert_eq!(OutcomeCache::with_shards(3).shard_count(), 4);
        assert_eq!(OutcomeCache::with_shards(9000).shard_count(), 1024);
        // A single shard routes everything to 0 without shifting by 64.
        let one = OutcomeCache::with_shards(1);
        assert_eq!(one.shard_of(u64::MAX), 0);
    }

    fn prepared() -> Arc<PreparedSchedule> {
        use mcds_model::{ApplicationBuilder, Cycles, DataKind, Words};
        let mut b = ApplicationBuilder::new("cache-test");
        let a = b.data("a", Words::new(64), DataKind::ExternalInput);
        let f = b.data("f", Words::new(32), DataKind::FinalResult);
        b.kernel("k", 16, Cycles::new(200), &[a], &[f]);
        let app = b.iterations(8).build().expect("valid");
        Arc::new(mcds_core::Pipeline::new(app).prepare().expect("prepares"))
    }

    #[test]
    fn analysis_first_leads_then_hits() {
        let cache = OutcomeCache::new();
        let AnalysisLookup::Lead(guard) = cache.analysis_lookup(11) else {
            panic!("empty family: first requester leads");
        };
        assert_eq!(guard.structure_key(), 11);
        let p = prepared();
        guard.fulfill(Arc::clone(&p));
        let AnalysisLookup::Hit(hit) = cache.analysis_lookup(11) else {
            panic!("memoized analysis hits");
        };
        assert!(Arc::ptr_eq(&hit, &p), "the same shared analysis");
        assert_eq!(cache.analysis_len(), 1);
        // Another structure key leads independently.
        assert!(matches!(cache.analysis_lookup(12), AnalysisLookup::Lead(_)));
        // The outcome family is untouched by the analysis family.
        assert!(cache.is_empty());
    }

    #[test]
    fn analysis_waiters_block_until_the_leader_fulfills() {
        let cache = OutcomeCache::new();
        let AnalysisLookup::Lead(guard) = cache.analysis_lookup(5) else {
            panic!("leads");
        };
        let p = prepared();
        let hit = std::thread::scope(|s| {
            let waiter = {
                let cache = Arc::clone(&cache);
                s.spawn(move || match cache.analysis_lookup(5) {
                    AnalysisLookup::Hit(h) => h,
                    AnalysisLookup::Lead(_) => panic!("flight is open: must wait, not lead"),
                })
            };
            // Give the waiter a moment to park on the condvar, then
            // publish.
            std::thread::sleep(std::time::Duration::from_millis(20));
            guard.fulfill(Arc::clone(&p));
            waiter.join().expect("no panic")
        });
        assert!(Arc::ptr_eq(&hit, &p));
    }

    #[test]
    fn dropped_analysis_guard_reelects_a_leader() {
        let cache = OutcomeCache::new();
        let AnalysisLookup::Lead(guard) = cache.analysis_lookup(6) else {
            panic!("leads");
        };
        let relead = std::thread::scope(|s| {
            let waiter = {
                let cache = Arc::clone(&cache);
                s.spawn(move || matches!(cache.analysis_lookup(6), AnalysisLookup::Lead(_)))
            };
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(guard); // preparation failed: no fulfill
            waiter.join().expect("no panic")
        });
        assert!(relead, "a waiter takes over the abandoned flight");
        assert_eq!(cache.analysis_len(), 0);
    }

    #[test]
    fn concurrent_lookups_elect_exactly_one_leader() {
        let cache = OutcomeCache::new();
        let leads: Vec<bool> = std::thread::scope(|s| {
            (0..8)
                .map(|i| {
                    let cache = Arc::clone(&cache);
                    s.spawn(move || match cache.lookup(77, i) {
                        Lookup::Lead(guard) => {
                            guard.fulfill(CachedEntry::ok(outcome(1)));
                            true
                        }
                        _ => false,
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        assert_eq!(
            leads.iter().filter(|&&l| l).count(),
            1,
            "single-flight: one leader among concurrent requesters"
        );
    }
}
