//! Content-addressed outcome cache with single-flight deduplication.
//!
//! The cache maps a canonical request key
//! ([`mcds_core::request_key`]) to the serialized scheduling outcome.
//! The first requester of a key becomes the *leader* and computes;
//! concurrent requesters of the same key block until the leader
//! publishes, so one popular request costs one pipeline run no matter
//! how many connections ask for it.
//!
//! Both successes and deterministic scheduling errors (e.g. "infeasible
//! at this memory size") are cached — they are pure functions of the
//! request. Abandoned runs (deadline exceeded, shutdown) are *never*
//! cached: the leader's [`FlightGuard`] removes the in-flight entry so
//! a later request with a longer deadline recomputes instead of
//! inheriting the short deadline's failure.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::protocol::Outcome;

/// A published result: the outcome, or a deterministic error message.
pub type CachedResult = Arc<Result<Outcome, String>>;

/// The cache key a request's *degraded* outcome lives under: a salted
/// permutation of its canonical key. Degraded results (within-cluster
/// scheduler fallback) must never alias the full-quality result, so a
/// later request with a generous deadline still computes the real
/// thing.
#[must_use]
pub fn degraded_key(key: u64) -> u64 {
    mcds_core::splitmix64(key ^ 0xDE62_ADED_0000_0001)
}

enum Entry {
    InFlight,
    Ready(CachedResult),
}

/// What [`OutcomeCache::begin`] resolved the key to.
pub enum Begin {
    /// A published result was available (or a leader published while we
    /// waited) — a cache hit.
    Hit(CachedResult),
    /// This caller is the leader: compute, then
    /// [`fulfill`](FlightGuard::fulfill) or
    /// [`abandon`](FlightGuard::abandon) the guard.
    Lead(FlightGuard),
    /// The caller's deadline expired while waiting for a leader.
    TimedOut,
}

/// The leader's obligation: exactly one of
/// [`fulfill`](Self::fulfill) / [`abandon`](Self::abandon). Dropping
/// the guard without either (e.g. on panic) abandons, so waiters never
/// hang on a dead leader.
pub struct FlightGuard {
    cache: Arc<OutcomeCache>,
    key: u64,
    done: bool,
}

impl FlightGuard {
    /// Publishes the result for every current and future requester.
    pub fn fulfill(mut self, result: Result<Outcome, String>) -> CachedResult {
        self.done = true;
        let shared = Arc::new(result);
        let mut map = self.cache.map.lock().expect("cache lock");
        map.insert(self.key, Entry::Ready(Arc::clone(&shared)));
        drop(map);
        self.cache.ready.notify_all();
        shared
    }

    /// Removes the in-flight entry without publishing — the run was
    /// abandoned and must not poison the cache. A waiting requester
    /// becomes the next leader.
    pub fn abandon(mut self) {
        self.done = true;
        self.cache.remove_in_flight(self.key);
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if !self.done {
            self.cache.remove_in_flight(self.key);
        }
    }
}

/// The cache. Shared across connection and worker threads via `Arc`.
#[derive(Default)]
pub struct OutcomeCache {
    map: Mutex<HashMap<u64, Entry>>,
    ready: Condvar,
}

impl OutcomeCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(OutcomeCache::default())
    }

    /// Resolves `key`: an immediate hit, leadership of the first
    /// computation, or a timeout while waiting for another leader
    /// (`deadline` bounds the wait; `None` waits indefinitely).
    #[must_use]
    pub fn begin(self: &Arc<Self>, key: u64, deadline: Option<Instant>) -> Begin {
        let mut map = self.map.lock().expect("cache lock");
        loop {
            match map.get(&key) {
                Some(Entry::Ready(r)) => return Begin::Hit(Arc::clone(r)),
                None => {
                    map.insert(key, Entry::InFlight);
                    return Begin::Lead(FlightGuard {
                        cache: Arc::clone(self),
                        key,
                        done: false,
                    });
                }
                Some(Entry::InFlight) => match deadline {
                    None => map = self.ready.wait(map).expect("cache lock"),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return Begin::TimedOut;
                        }
                        map = self.ready.wait_timeout(map, d - now).expect("cache lock").0;
                    }
                },
            }
        }
    }

    /// Publishes a result directly, without leading a flight — used by
    /// the degraded fallback path, which computes under the *degraded*
    /// key while the primary key's flight is abandoned. Overwrites any
    /// existing entry (results are deterministic, so a racing leader
    /// publishes the identical value) and wakes every waiter.
    pub fn publish(&self, key: u64, result: Result<Outcome, String>) -> CachedResult {
        let shared = Arc::new(result);
        let mut map = self.map.lock().expect("cache lock");
        map.insert(key, Entry::Ready(Arc::clone(&shared)));
        drop(map);
        self.ready.notify_all();
        shared
    }

    /// Published entry count (in-flight entries excluded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .expect("cache lock")
            .values()
            .filter(|e| matches!(e, Entry::Ready(_)))
            .count()
    }

    /// `true` when nothing has been published yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn remove_in_flight(&self, key: u64) {
        let mut map = self.map.lock().expect("cache lock");
        // Only clear our own in-flight marker: a racing re-publish
        // (cannot normally happen, but cheap to guard) stays.
        if matches!(map.get(&key), Some(Entry::InFlight)) {
            map.remove(&key);
        }
        drop(map);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn outcome(cycles: u64) -> Outcome {
        Outcome {
            app: "t".to_owned(),
            scheduler: "cds".to_owned(),
            clusters: 1,
            rf: 1,
            dt_avoided_words: 0,
            data_words: 0,
            context_words: 0,
            total_cycles: cycles,
            degraded: false,
        }
    }

    #[test]
    fn first_leads_then_hits() {
        let cache = OutcomeCache::new();
        let Begin::Lead(guard) = cache.begin(7, None) else {
            panic!("empty cache: first requester leads");
        };
        guard.fulfill(Ok(outcome(10)));
        let Begin::Hit(r) = cache.begin(7, None) else {
            panic!("published entry: second requester hits");
        };
        assert_eq!(r.as_ref().as_ref().expect("ok").total_cycles, 10);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn deterministic_errors_are_cached_too() {
        let cache = OutcomeCache::new();
        let Begin::Lead(guard) = cache.begin(1, None) else {
            panic!("leads");
        };
        guard.fulfill(Err("infeasible".to_owned()));
        let Begin::Hit(r) = cache.begin(1, None) else {
            panic!("hits");
        };
        assert_eq!(r.as_ref().as_ref().unwrap_err(), "infeasible");
    }

    #[test]
    fn abandon_and_drop_clear_the_flight() {
        let cache = OutcomeCache::new();
        let Begin::Lead(guard) = cache.begin(2, None) else {
            panic!("leads");
        };
        guard.abandon();
        // The next requester leads again instead of hanging or seeing a
        // poisoned entry.
        let Begin::Lead(guard) = cache.begin(2, None) else {
            panic!("abandoned key has no entry");
        };
        drop(guard); // panic-safety path: plain drop also clears
        assert!(matches!(cache.begin(2, None), Begin::Lead(_)));
        assert!(cache.is_empty());
    }

    #[test]
    fn waiters_receive_the_leaders_result() {
        let cache = OutcomeCache::new();
        let Begin::Lead(guard) = cache.begin(3, None) else {
            panic!("leads");
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || match cache.begin(3, None) {
                    Begin::Hit(r) => r.as_ref().as_ref().expect("ok").total_cycles,
                    _ => panic!("waiter must resolve to the published result"),
                })
            })
            .collect();
        // Give the waiters time to block on the in-flight entry.
        std::thread::sleep(Duration::from_millis(20));
        guard.fulfill(Ok(outcome(42)));
        for w in waiters {
            assert_eq!(w.join().expect("no panic"), 42);
        }
    }

    #[test]
    fn publish_overrides_and_wakes() {
        let cache = OutcomeCache::new();
        // Publish under a degraded key while the primary flight is
        // still open: the primary key is untouched.
        let Begin::Lead(guard) = cache.begin(8, None) else {
            panic!("leads");
        };
        let dkey = degraded_key(8);
        assert_ne!(dkey, 8);
        cache.publish(dkey, Ok(outcome(5)));
        let Begin::Hit(r) = cache.begin(dkey, None) else {
            panic!("published degraded entry hits");
        };
        assert_eq!(r.as_ref().as_ref().expect("ok").total_cycles, 5);
        guard.abandon();
        assert!(
            matches!(cache.begin(8, None), Begin::Lead(_)),
            "primary key stays independent of the degraded entry"
        );
    }

    #[test]
    fn waiting_respects_the_deadline() {
        let cache = OutcomeCache::new();
        let Begin::Lead(_guard) = cache.begin(4, None) else {
            panic!("leads");
        };
        let deadline = Instant::now() + Duration::from_millis(30);
        let started = Instant::now();
        assert!(matches!(cache.begin(4, Some(deadline)), Begin::TimedOut));
        assert!(started.elapsed() < Duration::from_secs(5), "bounded wait");
    }
}
