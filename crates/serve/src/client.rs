//! Load-test client: N connections × M requests over a workload mix.
//!
//! Each connection samples workload names from its own deterministic
//! [`RequestMix`](mcds_workloads::mix::RequestMix) (seeded `seed +
//! connection index`, so runs are reproducible yet connections
//! diverge), measures the client-observed round-trip latency of every
//! request, and checks that responses for the same request key carry
//! **byte-identical** outcomes — the end-to-end determinism claim of
//! the serving layer.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mcds_core::McdsError;
use mcds_workloads::mix::RequestMix;
use serde::{Deserialize, Serialize};

use crate::protocol::{ScheduleRequest, ScheduleResponse};

/// Load-generator tunables.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7171`.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Requests per connection.
    pub requests: usize,
    /// Base RNG seed; connection `i` samples with `seed + i`.
    pub seed: u64,
    /// Streaming iterations passed with every request.
    pub iterations: u64,
    /// Frame Buffer set size in kilowords sent with every request.
    /// The default (8) fits every catalog workload; shrink it to
    /// exercise deterministic infeasibility errors.
    pub fb_kw: u64,
    /// Scheduler name sent with every request (`None` → server
    /// default).
    pub scheduler: Option<String>,
    /// Per-request deadline in milliseconds (`None` → no deadline).
    pub deadline_ms: Option<u64>,
    /// Retry attempts per request after the first try (`0` disables
    /// retrying). Retries fire on transport failures (disconnects,
    /// truncated or unparseable frames) and on responses the server
    /// marks `retryable` (overload rejections, abandoned or faulted
    /// runs).
    pub retries: u32,
    /// First backoff delay in milliseconds; attempt `n` waits up to
    /// `min(backoff_cap_ms, backoff_base_ms << n)` with deterministic
    /// jitter in the upper half of that window.
    pub backoff_base_ms: u64,
    /// Upper bound on a single backoff delay, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Total retry budget per request, in milliseconds: a retry whose
    /// backoff would overrun the budget is skipped and the last
    /// observed failure stands.
    pub retry_budget_ms: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7171".to_owned(),
            connections: 4,
            requests: 50,
            seed: 1,
            iterations: 16,
            fb_kw: 8,
            scheduler: None,
            deadline_ms: None,
            retries: 3,
            backoff_base_ms: 5,
            backoff_cap_ms: 80,
            retry_budget_ms: 2_000,
        }
    }
}

/// Aggregated results of one load run. Serializes to the
/// `BENCH_serve.json` evidence format.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// Connections opened.
    pub connections: u64,
    /// Requests sent (across all connections).
    pub requests: u64,
    /// `ok` responses.
    pub ok: u64,
    /// `error` responses.
    pub errors: u64,
    /// `rejected` responses (admission queue full).
    pub rejected: u64,
    /// `ok` responses served from the cache.
    pub cache_hits: u64,
    /// `ok` responses that were computed.
    pub cache_misses: u64,
    /// Distinct request keys observed.
    pub distinct_keys: u64,
    /// `true` iff every response for the same key carried a
    /// byte-identical outcome.
    pub consistent_outcomes: bool,
    /// Wall-clock duration of the run in milliseconds.
    pub elapsed_ms: u64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median client-observed round-trip latency (µs).
    pub p50_us: u64,
    /// 95th-percentile latency (µs).
    pub p95_us: u64,
    /// 99th-percentile latency (µs).
    pub p99_us: u64,
    /// Worst-case latency (µs).
    pub max_us: u64,
    /// Retry attempts performed (beyond each request's first try).
    #[serde(default)]
    pub retried: u64,
    /// Transport-level failures observed (disconnects, truncated or
    /// unparseable frames) — each one forces a reconnect.
    #[serde(default)]
    pub transport_errors: u64,
    /// `ok` responses served by the degraded fallback scheduler.
    #[serde(default)]
    pub degraded: u64,
}

/// One response as observed by a connection.
struct Sample {
    latency_us: u64,
    status: String,
    cache: Option<String>,
    key: Option<String>,
    outcome_json: Option<String>,
    degraded: bool,
    /// Retry attempts this request consumed.
    retried: u64,
    /// Transport failures this request weathered.
    transport_errors: u64,
}

/// Runs the load: `connections` threads, each sending `requests`
/// schedule requests sampled from the standard workload mix, then
/// aggregates latency percentiles and the byte-identity check.
///
/// # Errors
///
/// [`McdsError::Io`] when a connection cannot be established or dies
/// mid-run. Protocol-level failures (`error`/`rejected` responses) are
/// *counted*, not returned as errors.
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, McdsError> {
    let started = Instant::now();
    let samples: Vec<Vec<Sample>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..config.connections.max(1))
            .map(|i| s.spawn(move || drive_connection(config, i as u64)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread must not panic"))
            .collect::<Result<Vec<_>, std::io::Error>>()
    })?;
    let elapsed = started.elapsed();

    let mut report = LoadReport {
        connections: config.connections.max(1) as u64,
        requests: 0,
        ok: 0,
        errors: 0,
        rejected: 0,
        cache_hits: 0,
        cache_misses: 0,
        distinct_keys: 0,
        consistent_outcomes: true,
        elapsed_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
        throughput_rps: 0.0,
        p50_us: 0,
        p95_us: 0,
        p99_us: 0,
        max_us: 0,
        retried: 0,
        transport_errors: 0,
        degraded: 0,
    };
    let mut latencies: Vec<u64> = Vec::new();
    let mut by_key: HashMap<String, String> = HashMap::new();
    for sample in samples.into_iter().flatten() {
        report.requests += 1;
        latencies.push(sample.latency_us);
        report.retried += sample.retried;
        report.transport_errors += sample.transport_errors;
        match sample.status.as_str() {
            "ok" => {
                report.ok += 1;
                if sample.degraded {
                    report.degraded += 1;
                }
                match sample.cache.as_deref() {
                    Some("hit") => report.cache_hits += 1,
                    _ => report.cache_misses += 1,
                }
            }
            "rejected" => report.rejected += 1,
            _ => report.errors += 1,
        }
        if let (Some(key), Some(json)) = (sample.key, sample.outcome_json) {
            match by_key.entry(key) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(json);
                }
                std::collections::hash_map::Entry::Occupied(o) => {
                    if o.get() != &json {
                        report.consistent_outcomes = false;
                    }
                }
            }
        }
    }
    report.distinct_keys = by_key.len() as u64;
    if elapsed.as_secs_f64() > 0.0 {
        report.throughput_rps = report.requests as f64 / elapsed.as_secs_f64();
    }
    latencies.sort_unstable();
    report.p50_us = percentile(&latencies, 50);
    report.p95_us = percentile(&latencies, 95);
    report.p99_us = percentile(&latencies, 99);
    report.max_us = latencies.last().copied().unwrap_or(0);
    Ok(report)
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], q: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() - 1) * q / 100;
    sorted[rank]
}

/// One live protocol connection; dropped and re-opened after any
/// transport failure so a poisoned stream never leaks a stale frame
/// into the next exchange.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Result<Conn, std::io::Error> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// One request/response exchange. Any `Err` means the transport is
    /// suspect (disconnect, truncated frame, garbage) — the caller must
    /// reconnect before retrying.
    fn exchange(&mut self, payload: &[u8]) -> Result<ScheduleResponse, std::io::Error> {
        self.writer.write_all(payload)?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        if !line.ends_with('\n') {
            // A frame without its terminator: the server died (or an
            // injected fault truncated the write) mid-frame.
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "truncated response frame",
            ));
        }
        serde_json::from_str(line.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// The backoff before retry `attempt` (0-based): capped exponential
/// with deterministic jitter in the upper half of the window, derived
/// from `(seed, connection, request, attempt)` so two runs with the
/// same seed sleep identically.
fn backoff(config: &LoadConfig, conn: u64, request: u64, attempt: u32) -> Duration {
    let ceiling = config
        .backoff_cap_ms
        .min(config.backoff_base_ms.saturating_shl(attempt))
        .max(1);
    let h = mcds_core::splitmix64(
        mcds_core::splitmix64(config.seed ^ (conn << 48) ^ (request << 16)) ^ u64::from(attempt),
    );
    let floor = ceiling / 2;
    Duration::from_millis(floor + h % (ceiling - floor + 1))
}

/// Helper: `u64` shift that saturates instead of overflowing.
trait SaturatingShl {
    fn saturating_shl(self, by: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, by: u32) -> u64 {
        self.checked_shl(by).unwrap_or(u64::MAX)
    }
}

fn drive_connection(config: &LoadConfig, index: u64) -> Result<Vec<Sample>, std::io::Error> {
    let mut conn = Some(Conn::open(&config.addr)?);
    let mut mix = RequestMix::standard(config.seed.wrapping_add(index));
    let mut samples = Vec::with_capacity(config.requests);
    let budget = Duration::from_millis(config.retry_budget_ms);
    for r in 0..config.requests {
        let name = mix.next_name().expect("standard mix is non-empty");
        let mut request = ScheduleRequest::schedule(name);
        request.iterations = Some(config.iterations);
        request.fb_kw = Some(config.fb_kw);
        request.scheduler = config.scheduler.clone();
        request.deadline_ms = config.deadline_ms;
        let mut payload = serde_json::to_string(&request)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        payload.push('\n');

        let started = Instant::now();
        let mut retried = 0u64;
        let mut transport_errors = 0u64;
        let mut attempt = 0u32;
        let sample = loop {
            let sent = Instant::now();
            let outcome = match conn.as_mut() {
                Some(c) => c.exchange(payload.as_bytes()),
                // The previous attempt poisoned the stream: reconnect,
                // then exchange on the fresh connection.
                None => Conn::open(&config.addr).and_then(|mut c| {
                    let response = c.exchange(payload.as_bytes());
                    conn = Some(c);
                    response
                }),
            };
            let latency_us = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
            let (retryable, sample) = match outcome {
                Ok(response) => {
                    let retryable = response.status == "rejected"
                        || (response.status != "ok" && response.retryable == Some(true));
                    let outcome_json = response
                        .outcome
                        .as_ref()
                        .and_then(|o| serde_json::to_string(o).ok());
                    let degraded = response.outcome.as_ref().is_some_and(|o| o.degraded);
                    (
                        retryable,
                        Sample {
                            latency_us,
                            status: response.status,
                            cache: response.cache,
                            key: response.key,
                            outcome_json,
                            degraded,
                            retried,
                            transport_errors,
                        },
                    )
                }
                Err(e) => {
                    conn = None;
                    transport_errors += 1;
                    (
                        true,
                        Sample {
                            latency_us,
                            status: format!("transport: {}", e.kind()),
                            cache: None,
                            key: None,
                            outcome_json: None,
                            degraded: false,
                            retried,
                            transport_errors,
                        },
                    )
                }
            };
            if !retryable || attempt >= config.retries {
                break sample;
            }
            let delay = backoff(config, index, r as u64, attempt);
            if started.elapsed() + delay > budget {
                // Out of budget: the last observed failure stands.
                break sample;
            }
            std::thread::sleep(delay);
            attempt += 1;
            retried += 1;
        };
        samples.push(sample);
    }
    Ok(samples)
}
