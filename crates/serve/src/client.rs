//! The typed client: a builder-configured connection that speaks the
//! v1 protocol and classifies every failure by [`ErrorCode`] — no
//! string matching on error messages, ever.
//!
//! ```no_run
//! use mcds_serve::{ClientConfig, ScheduleSpec};
//!
//! let mut client = ClientConfig::new("127.0.0.1:7171")
//!     .with_retry(3)
//!     .with_deadline(500)
//!     .with_reconnect(true)
//!     .connect()?;
//! let scheduled = client.schedule(&ScheduleSpec::workload("e1"))?;
//! println!("{} cycles", scheduled.outcome.total_cycles);
//! # Ok::<(), mcds_serve::ClientError>(())
//! ```

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::protocol::{
    ErrorCode, QosClass, ScheduleSpec, Scheduled, ServeError, ServeRequest, ServeResponse,
    StatsReply,
};

/// Builder-style client configuration. Every `with_*` method consumes
/// and returns the config, so a client is assembled in one expression
/// and finished with [`connect`](Self::connect).
#[derive(Debug, Clone)]
pub struct ClientConfig {
    addr: String,
    retries: u32,
    backoff_base_ms: u64,
    backoff_cap_ms: u64,
    retry_budget_ms: u64,
    deadline_ms: Option<u64>,
    class: Option<QosClass>,
    reconnect: bool,
    seed: u64,
}

impl ClientConfig {
    /// A config for the server at `addr` with retries disabled, no
    /// default deadline, and reconnect-on-transport-failure enabled.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> ClientConfig {
        ClientConfig {
            addr: addr.into(),
            retries: 0,
            backoff_base_ms: 5,
            backoff_cap_ms: 80,
            retry_budget_ms: 2_000,
            deadline_ms: None,
            class: None,
            reconnect: true,
            seed: 1,
        }
    }

    /// Retry attempts per request after the first try. Retries fire on
    /// transport failures (disconnects, truncated or unparseable
    /// frames) and on typed responses whose [`ErrorCode::retryable`]
    /// is `true` (overload rejections, abandoned or faulted runs).
    #[must_use]
    pub fn with_retry(mut self, retries: u32) -> ClientConfig {
        self.retries = retries;
        self
    }

    /// Backoff schedule: attempt `n` waits up to
    /// `min(cap_ms, base_ms << n)` milliseconds with deterministic
    /// jitter in the upper half of that window; a retry whose backoff
    /// would overrun `budget_ms` (counted per request) is skipped and
    /// the last observed failure stands.
    #[must_use]
    pub fn with_backoff(mut self, base_ms: u64, cap_ms: u64, budget_ms: u64) -> ClientConfig {
        self.backoff_base_ms = base_ms.max(1);
        self.backoff_cap_ms = cap_ms.max(1);
        self.retry_budget_ms = budget_ms;
        self
    }

    /// Default per-request deadline in milliseconds, attached to every
    /// `schedule` whose spec does not carry its own.
    #[must_use]
    pub fn with_deadline(mut self, deadline_ms: u64) -> ClientConfig {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Default admission class attached to every `schedule` whose spec
    /// does not carry its own (the server treats an absent class as
    /// `standard`).
    #[must_use]
    pub fn with_class(mut self, class: QosClass) -> ClientConfig {
        self.class = Some(class);
        self
    }

    /// Whether a transport failure re-opens the connection before the
    /// next attempt (`true` by default). With reconnect disabled, the
    /// first transport failure is terminal.
    #[must_use]
    pub fn with_reconnect(mut self, reconnect: bool) -> ClientConfig {
        self.reconnect = reconnect;
        self
    }

    /// Seed for the deterministic backoff jitter.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> ClientConfig {
        self.seed = seed;
        self
    }

    /// The configured server address.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Opens the connection.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] when the server cannot be reached.
    pub fn connect(self) -> Result<Client, ClientError> {
        let conn = Conn::open(&self.addr).map_err(ClientError::transport)?;
        Ok(Client {
            config: self,
            conn: Some(conn),
            exchanges: 0,
            retried: 0,
            transport_errors: 0,
        })
    }
}

/// Why a client call failed, typed end to end.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The transport failed (connect, disconnect, truncated or
    /// unparseable frame) and retries — if any — were exhausted.
    Transport {
        /// The I/O failure class.
        kind: std::io::ErrorKind,
        /// Human-oriented diagnostic.
        message: String,
    },
    /// The server answered with a typed failure; branch on
    /// [`ServeError::code`].
    Server(ServeError),
    /// The server answered something structurally valid but impossible
    /// for the request (e.g. a `stats` payload for a `ping`).
    Protocol(String),
}

impl ClientError {
    fn transport(e: std::io::Error) -> ClientError {
        ClientError::Transport {
            kind: e.kind(),
            message: e.to_string(),
        }
    }

    /// `true` when retrying the call may succeed.
    #[must_use]
    pub fn retryable(&self) -> bool {
        match self {
            ClientError::Transport { .. } => true,
            ClientError::Server(e) => e.retryable(),
            ClientError::Protocol(_) => false,
        }
    }

    /// The server's [`ErrorCode`], when this is a typed server
    /// failure.
    #[must_use]
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server(e) => Some(e.code),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport { kind, message } => write!(f, "transport ({kind}): {message}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
            ClientError::Protocol(message) => write!(f, "protocol: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One live protocol connection; dropped and re-opened after any
/// transport failure so a poisoned stream never leaks a stale frame
/// into the next exchange.
pub(crate) struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    pub(crate) fn open(addr: &str) -> Result<Conn, std::io::Error> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    pub(crate) fn send(&mut self, payload: &[u8]) -> Result<(), std::io::Error> {
        self.writer.write_all(payload)
    }

    /// Reads one response frame. Any `Err` means the transport is
    /// suspect (disconnect, truncated frame, garbage) — the caller
    /// must reconnect before retrying.
    pub(crate) fn receive(&mut self) -> Result<ServeResponse, std::io::Error> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        if !line.ends_with('\n') {
            // A frame without its terminator: the server died (or an
            // injected fault truncated the write) mid-frame.
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "truncated response frame",
            ));
        }
        ServeResponse::decode(line.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    fn exchange(&mut self, payload: &[u8]) -> Result<ServeResponse, std::io::Error> {
        self.send(payload)?;
        self.receive()
    }
}

/// The backoff before retry `attempt` (0-based): capped exponential
/// with deterministic jitter in the upper half of the window, derived
/// from `(seed, call, attempt)` so two runs with the same seed sleep
/// identically.
pub(crate) fn backoff(seed: u64, base_ms: u64, cap_ms: u64, call: u64, attempt: u32) -> Duration {
    let ceiling = cap_ms
        .min(base_ms.checked_shl(attempt).unwrap_or(u64::MAX))
        .max(1);
    let h = mcds_core::splitmix64(mcds_core::splitmix64(seed ^ (call << 16)) ^ u64::from(attempt));
    let floor = ceiling / 2;
    Duration::from_millis(floor + h % (ceiling - floor + 1))
}

/// A connected v1 client. All calls are synchronous; retries and
/// reconnects happen inside [`request`](Self::request) according to
/// the [`ClientConfig`].
pub struct Client {
    config: ClientConfig,
    conn: Option<Conn>,
    exchanges: u64,
    retried: u64,
    transport_errors: u64,
}

impl Client {
    /// Computes (or fetches from cache) a scheduling outcome. The
    /// config's default deadline and admission class apply when the
    /// spec carries none.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for typed failures,
    /// [`ClientError::Transport`] when the connection died and retries
    /// were exhausted.
    pub fn schedule(&mut self, spec: &ScheduleSpec) -> Result<Scheduled, ClientError> {
        let mut spec = spec.clone();
        if spec.deadline_ms.is_none() {
            spec.deadline_ms = self.config.deadline_ms;
        }
        if spec.class.is_none() {
            spec.class = self.config.class;
        }
        match self.request(&ServeRequest::Schedule(spec))? {
            ServeResponse::Scheduled(s) => Ok(s),
            ServeResponse::Failed(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("schedule", &other)),
        }
    }

    /// Liveness probe; returns the server-side latency in µs.
    ///
    /// # Errors
    ///
    /// As [`schedule`](Self::schedule).
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        match self.request(&ServeRequest::Ping)? {
            ServeResponse::Pong { latency_us } => Ok(latency_us),
            ServeResponse::Failed(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("ping", &other)),
        }
    }

    /// Fetches the server's metrics snapshot.
    ///
    /// # Errors
    ///
    /// As [`schedule`](Self::schedule).
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.request(&ServeRequest::Stats)? {
            ServeResponse::Stats(s) => Ok(s),
            ServeResponse::Failed(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// As [`schedule`](Self::schedule).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&ServeRequest::Shutdown)? {
            ServeResponse::ShuttingDown { .. } => Ok(()),
            ServeResponse::Failed(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("shutdown", &other)),
        }
    }

    /// Sends one typed request and returns the typed response,
    /// retrying transport failures and retryable typed failures per
    /// the config. A non-retryable [`ServeResponse::Failed`] is
    /// returned as `Ok` — callers branch on the typed surface.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] when the transport died and retries
    /// were exhausted (or reconnect is disabled).
    pub fn request(&mut self, request: &ServeRequest) -> Result<ServeResponse, ClientError> {
        let mut payload = request.encode();
        payload.push('\n');
        let call = self.exchanges;
        self.exchanges += 1;
        let started = Instant::now();
        let budget = Duration::from_millis(self.config.retry_budget_ms);
        let mut attempt = 0u32;
        loop {
            let outcome = match self.conn.as_mut() {
                Some(c) => c.exchange(payload.as_bytes()),
                None => Conn::open(&self.config.addr).and_then(|mut c| {
                    let response = c.exchange(payload.as_bytes());
                    self.conn = Some(c);
                    response
                }),
            };
            let (retryable, result) = match outcome {
                Ok(ServeResponse::Failed(e)) if e.retryable() => {
                    (true, Ok(ServeResponse::Failed(e)))
                }
                Ok(response) => (false, Ok(response)),
                Err(e) => {
                    self.conn = None;
                    self.transport_errors += 1;
                    (self.config.reconnect, Err(ClientError::transport(e)))
                }
            };
            if !retryable || attempt >= self.config.retries {
                return result;
            }
            let delay = backoff(
                self.config.seed,
                self.config.backoff_base_ms,
                self.config.backoff_cap_ms,
                call,
                attempt,
            );
            if started.elapsed() + delay > budget {
                // Out of budget: the last observed failure stands.
                return result;
            }
            std::thread::sleep(delay);
            attempt += 1;
            self.retried += 1;
        }
    }

    /// Sends one hand-written wire line (no retries, no rewriting) and
    /// decodes the typed response — the escape hatch for exercising
    /// frames the typed surface cannot produce: legacy envelopes,
    /// malformed JSON, unknown verbs.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] when the connection dies mid-exchange.
    pub fn raw_roundtrip(&mut self, line: &str) -> Result<ServeResponse, ClientError> {
        Ok(self.pipeline_raw(&[line])?.remove(0))
    }

    /// Writes every line before reading any response, then decodes
    /// exactly one typed response per line, in order — the server's
    /// per-connection FIFO guarantee makes the pairing positional.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] when the connection dies mid-exchange.
    pub fn pipeline_raw(&mut self, lines: &[&str]) -> Result<Vec<ServeResponse>, ClientError> {
        self.exchanges += lines.len() as u64;
        let conn = match self.conn.as_mut() {
            Some(c) => c,
            None => {
                let c = Conn::open(&self.config.addr).map_err(ClientError::transport)?;
                self.conn.insert(c)
            }
        };
        let run = |conn: &mut Conn| -> Result<Vec<ServeResponse>, std::io::Error> {
            let mut payload = String::new();
            for line in lines {
                payload.push_str(line);
                payload.push('\n');
            }
            conn.send(payload.as_bytes())?;
            lines.iter().map(|_| conn.receive()).collect()
        };
        run(conn).map_err(|e| {
            self.conn = None;
            self.transport_errors += 1;
            ClientError::transport(e)
        })
    }

    /// Retry attempts performed across the client's lifetime.
    #[must_use]
    pub fn retried(&self) -> u64 {
        self.retried
    }

    /// Transport failures weathered across the client's lifetime.
    #[must_use]
    pub fn transport_errors(&self) -> u64 {
        self.transport_errors
    }
}

fn unexpected(verb: &str, response: &ServeResponse) -> ClientError {
    ClientError::Protocol(format!("unexpected response to `{verb}`: {response:?}"))
}
