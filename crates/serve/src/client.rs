//! Load-test client: N connections × M requests over a workload mix.
//!
//! Each connection samples workload names from its own deterministic
//! [`RequestMix`](mcds_workloads::mix::RequestMix) (seeded `seed +
//! connection index`, so runs are reproducible yet connections
//! diverge), measures the client-observed round-trip latency of every
//! request, and checks that responses for the same request key carry
//! **byte-identical** outcomes — the end-to-end determinism claim of
//! the serving layer.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use mcds_core::McdsError;
use mcds_workloads::mix::RequestMix;
use serde::{Deserialize, Serialize};

use crate::protocol::{ScheduleRequest, ScheduleResponse};

/// Load-generator tunables.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7171`.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Requests per connection.
    pub requests: usize,
    /// Base RNG seed; connection `i` samples with `seed + i`.
    pub seed: u64,
    /// Streaming iterations passed with every request.
    pub iterations: u64,
    /// Frame Buffer set size in kilowords sent with every request.
    /// The default (8) fits every catalog workload; shrink it to
    /// exercise deterministic infeasibility errors.
    pub fb_kw: u64,
    /// Scheduler name sent with every request (`None` → server
    /// default).
    pub scheduler: Option<String>,
    /// Per-request deadline in milliseconds (`None` → no deadline).
    pub deadline_ms: Option<u64>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7171".to_owned(),
            connections: 4,
            requests: 50,
            seed: 1,
            iterations: 16,
            fb_kw: 8,
            scheduler: None,
            deadline_ms: None,
        }
    }
}

/// Aggregated results of one load run. Serializes to the
/// `BENCH_serve.json` evidence format.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// Connections opened.
    pub connections: u64,
    /// Requests sent (across all connections).
    pub requests: u64,
    /// `ok` responses.
    pub ok: u64,
    /// `error` responses.
    pub errors: u64,
    /// `rejected` responses (admission queue full).
    pub rejected: u64,
    /// `ok` responses served from the cache.
    pub cache_hits: u64,
    /// `ok` responses that were computed.
    pub cache_misses: u64,
    /// Distinct request keys observed.
    pub distinct_keys: u64,
    /// `true` iff every response for the same key carried a
    /// byte-identical outcome.
    pub consistent_outcomes: bool,
    /// Wall-clock duration of the run in milliseconds.
    pub elapsed_ms: u64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median client-observed round-trip latency (µs).
    pub p50_us: u64,
    /// 95th-percentile latency (µs).
    pub p95_us: u64,
    /// 99th-percentile latency (µs).
    pub p99_us: u64,
    /// Worst-case latency (µs).
    pub max_us: u64,
}

/// One response as observed by a connection.
struct Sample {
    latency_us: u64,
    status: String,
    cache: Option<String>,
    key: Option<String>,
    outcome_json: Option<String>,
}

/// Runs the load: `connections` threads, each sending `requests`
/// schedule requests sampled from the standard workload mix, then
/// aggregates latency percentiles and the byte-identity check.
///
/// # Errors
///
/// [`McdsError::Io`] when a connection cannot be established or dies
/// mid-run. Protocol-level failures (`error`/`rejected` responses) are
/// *counted*, not returned as errors.
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, McdsError> {
    let started = Instant::now();
    let samples: Vec<Vec<Sample>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..config.connections.max(1))
            .map(|i| s.spawn(move || drive_connection(config, i as u64)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread must not panic"))
            .collect::<Result<Vec<_>, std::io::Error>>()
    })?;
    let elapsed = started.elapsed();

    let mut report = LoadReport {
        connections: config.connections.max(1) as u64,
        requests: 0,
        ok: 0,
        errors: 0,
        rejected: 0,
        cache_hits: 0,
        cache_misses: 0,
        distinct_keys: 0,
        consistent_outcomes: true,
        elapsed_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
        throughput_rps: 0.0,
        p50_us: 0,
        p95_us: 0,
        p99_us: 0,
        max_us: 0,
    };
    let mut latencies: Vec<u64> = Vec::new();
    let mut by_key: HashMap<String, String> = HashMap::new();
    for sample in samples.into_iter().flatten() {
        report.requests += 1;
        latencies.push(sample.latency_us);
        match sample.status.as_str() {
            "ok" => {
                report.ok += 1;
                match sample.cache.as_deref() {
                    Some("hit") => report.cache_hits += 1,
                    _ => report.cache_misses += 1,
                }
            }
            "rejected" => report.rejected += 1,
            _ => report.errors += 1,
        }
        if let (Some(key), Some(json)) = (sample.key, sample.outcome_json) {
            match by_key.entry(key) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(json);
                }
                std::collections::hash_map::Entry::Occupied(o) => {
                    if o.get() != &json {
                        report.consistent_outcomes = false;
                    }
                }
            }
        }
    }
    report.distinct_keys = by_key.len() as u64;
    if elapsed.as_secs_f64() > 0.0 {
        report.throughput_rps = report.requests as f64 / elapsed.as_secs_f64();
    }
    latencies.sort_unstable();
    report.p50_us = percentile(&latencies, 50);
    report.p95_us = percentile(&latencies, 95);
    report.p99_us = percentile(&latencies, 99);
    report.max_us = latencies.last().copied().unwrap_or(0);
    Ok(report)
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], q: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() - 1) * q / 100;
    sorted[rank]
}

fn drive_connection(config: &LoadConfig, index: u64) -> Result<Vec<Sample>, std::io::Error> {
    let stream = TcpStream::connect(&config.addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut mix = RequestMix::standard(config.seed.wrapping_add(index));
    let mut samples = Vec::with_capacity(config.requests);
    let mut line = String::new();
    for _ in 0..config.requests {
        let name = mix.next_name().expect("standard mix is non-empty");
        let mut request = ScheduleRequest::schedule(name);
        request.iterations = Some(config.iterations);
        request.fb_kw = Some(config.fb_kw);
        request.scheduler = config.scheduler.clone();
        request.deadline_ms = config.deadline_ms;
        let mut payload = serde_json::to_string(&request)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        payload.push('\n');
        let sent = Instant::now();
        writer.write_all(payload.as_bytes())?;
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-run",
            ));
        }
        let latency_us = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
        let response: ScheduleResponse = serde_json::from_str(line.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let outcome_json = match &response.outcome {
            Some(outcome) => serde_json::to_string(outcome).ok(),
            None => None,
        };
        samples.push(Sample {
            latency_us,
            status: response.status,
            cache: response.cache,
            key: response.key,
            outcome_json,
        });
    }
    Ok(samples)
}
