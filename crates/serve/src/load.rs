//! The scaled load harness: pipelined connections over an enumerated
//! key space, explicit cold/warm phases, and reports that **merge**
//! across processes.
//!
//! Latency is aggregated in a log-linear histogram (32 sub-buckets per
//! octave, ≈3% relative error, percentiles reported from bucket upper
//! bounds so they never understate), which is what makes multi-process
//! merging exact: each driver process serializes its sparse histogram
//! and per-key outcome digests into its [`LoadReport`], and the parent
//! [`LoadReport::merge`]s them — percentiles over the *merged* vector,
//! never an average of per-process percentiles.
//!
//! Outcome consistency is checked end to end: every `ok` response's
//! outcome is hashed (FNV-1a over its canonical JSON) under its
//! request key; any two responses for the same key with different
//! digests — within a process or across processes — flip
//! `consistent_outcomes` to `false`.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mcds_core::{splitmix64, McdsError};
use serde::{Deserialize, Serialize};

use crate::client::Conn;
use crate::protocol::{format_key, QosClass, ScheduleSpec, ServeRequest, ServeResponse};

/// Load-generator tunables (one driver process).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7171`.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Total requests this process sends (across all connections,
    /// both phases).
    pub requests: usize,
    /// Distinct request keys to spread the load over (the cold phase
    /// touches each exactly once; the warm phase samples them).
    pub distinct_keys: usize,
    /// In-flight requests per connection (1 = strict request/response
    /// lockstep, required for deterministic chaos runs).
    pub pipeline: usize,
    /// Base RNG seed; connection `i` samples with a stream derived
    /// from `(seed, i)`.
    pub seed: u64,
    /// Scheduler name sent with every request (`None` → server
    /// default).
    pub scheduler: Option<String>,
    /// Per-request deadline in milliseconds (`None` → no deadline).
    pub deadline_ms: Option<u64>,
    /// Admission class sent with every request (`None` → standard).
    pub class: Option<QosClass>,
    /// Times a failed request is re-queued after its first try:
    /// transport failures and typed retryable failures (overload,
    /// deadline, faults) retry; deterministic failures never do.
    pub retries: u32,
    /// Encode requests in the deprecated un-versioned legacy shape
    /// (exercises the server's compat shim; counts under
    /// `serve.legacy_frames`).
    pub legacy: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7171".to_owned(),
            connections: 4,
            requests: 200,
            distinct_keys: 24,
            pipeline: 32,
            seed: 1,
            scheduler: None,
            deadline_ms: None,
            class: None,
            retries: 3,
            legacy: false,
        }
    }
}

/// A deterministic enumeration of `schedule` requests with pairwise
/// distinct canonical keys: the catalog workloads crossed with
/// iteration counts (1..=24) and Frame Buffer sizes (8 kW upward, so
/// every combination is feasible). Requests are pre-encoded once —
/// the driver writes the same bytes for the same key, which also
/// exercises the server's parse memo.
pub struct KeySpace {
    payloads: Vec<String>,
}

/// Iteration counts a key space cycles through per workload.
const KEYSPACE_ITERATIONS: u64 = 24;
/// Smallest Frame Buffer size (kilowords) — fits every catalog
/// workload; the key space only grows it from here.
const KEYSPACE_FB_KW: u64 = 8;

impl KeySpace {
    /// Enumerates `distinct` specs (at least 1).
    #[must_use]
    pub fn new(distinct: usize, config: &LoadConfig) -> KeySpace {
        let catalog = mcds_workloads::mix::CATALOG;
        let per_fb = catalog.len() as u64 * KEYSPACE_ITERATIONS;
        let payloads = (0..distinct.max(1) as u64)
            .map(|k| {
                let spec = ScheduleSpec {
                    workload: Some(catalog[(k % catalog.len() as u64) as usize].to_owned()),
                    iterations: Some((k / catalog.len() as u64) % KEYSPACE_ITERATIONS + 1),
                    app: None,
                    arch: None,
                    fb_kw: Some(KEYSPACE_FB_KW + k / per_fb),
                    scheduler: config.scheduler.clone(),
                    deadline_ms: config.deadline_ms,
                    class: config.class,
                };
                let request = ServeRequest::Schedule(spec);
                let mut line = if config.legacy {
                    request.encode_legacy()
                } else {
                    request.encode()
                };
                line.push('\n');
                line
            })
            .collect();
        KeySpace { payloads }
    }

    /// Number of distinct keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// `true` when the key space is empty (never, in practice).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// The pre-encoded wire line (with trailing newline) for key
    /// index `i`.
    #[must_use]
    pub fn payload(&self, i: usize) -> &str {
        &self.payloads[i % self.payloads.len().max(1)]
    }
}

// ---- log-linear latency histogram --------------------------------------

/// Sub-buckets per octave (as a power of two): 2^5 = 32 → ≈3% relative
/// resolution.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Dense bucket count covering the full `u64` range.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = (v >> (msb - SUB_BITS)) - SUB;
    ((msb - SUB_BITS + 1) as usize) * SUB as usize + sub as usize
}

/// Upper bound of bucket `b` — percentiles report this, so they never
/// understate the true value.
fn bucket_high(b: usize) -> u64 {
    let b = b as u64;
    if b < SUB {
        return b;
    }
    let octave = b / SUB;
    let sub = b % SUB;
    let high = (u128::from(SUB + sub + 1) << (octave - 1)) - 1;
    u64::try_from(high).unwrap_or(u64::MAX)
}

struct Hist {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Hist {
    fn new() -> Hist {
        Hist {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
        }
    }

    fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
    }

    fn from_sparse(buckets: &[u64], counts: &[u64], max: u64) -> Hist {
        let mut hist = Hist::new();
        hist.merge_sparse(buckets, counts, max);
        hist
    }

    fn merge_sparse(&mut self, buckets: &[u64], counts: &[u64], max: u64) {
        for (&b, &c) in buckets.iter().zip(counts) {
            if let Some(slot) = self.counts.get_mut(b as usize) {
                *slot += c;
                self.total += c;
            }
        }
        self.max = self.max.max(max);
    }

    fn to_sparse(&self) -> (Vec<u64>, Vec<u64>) {
        let mut buckets = Vec::new();
        let mut counts = Vec::new();
        for (b, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                buckets.push(b as u64);
                counts.push(c);
            }
        }
        (buckets, counts)
    }

    /// Nearest-rank percentile (bucket upper bound, clamped to the
    /// exact observed maximum).
    fn percentile(&self, pct: u64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (self.total - 1) * pct / 100;
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                return bucket_high(b).min(self.max);
            }
        }
        self.max
    }
}

// ---- reports -----------------------------------------------------------

/// Counters and latency distribution of one load phase.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Requests completed in this phase.
    pub requests: u64,
    /// `ok` responses.
    pub ok: u64,
    /// Typed non-retryable/exhausted failures.
    pub errors: u64,
    /// Overload rejections that stood after retries.
    pub rejected: u64,
    /// `ok` responses served from the cache.
    pub cache_hits: u64,
    /// `ok` responses that were computed.
    pub cache_misses: u64,
    /// Wall-clock duration of the phase in milliseconds.
    pub elapsed_ms: u64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median client-observed round-trip latency (µs).
    pub p50_us: u64,
    /// 95th-percentile latency (µs).
    pub p95_us: u64,
    /// 99th-percentile latency (µs).
    pub p99_us: u64,
    /// Worst-case latency (µs).
    pub max_us: u64,
    /// Sparse latency histogram: occupied bucket indices (log-linear,
    /// 32 sub-buckets per octave). Carried so reports merge exactly;
    /// stripped from published bench files.
    pub hist_buckets: Vec<u64>,
    /// Counts matching `hist_buckets` position by position.
    pub hist_counts: Vec<u64>,
}

impl PhaseStats {
    fn from_samples(samples: &[Sample], elapsed: Duration) -> PhaseStats {
        let mut hist = Hist::new();
        let mut stats = PhaseStats {
            elapsed_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
            ..PhaseStats::default()
        };
        for sample in samples {
            stats.requests += 1;
            hist.record(sample.latency_us);
            match sample.kind {
                SampleKind::Ok { hit, .. } => {
                    stats.ok += 1;
                    if hit {
                        stats.cache_hits += 1;
                    } else {
                        stats.cache_misses += 1;
                    }
                }
                SampleKind::Rejected => stats.rejected += 1,
                SampleKind::Error | SampleKind::Transport => stats.errors += 1,
            }
        }
        stats.refresh(hist);
        stats
    }

    fn refresh(&mut self, hist: Hist) {
        self.p50_us = hist.percentile(50);
        self.p95_us = hist.percentile(95);
        self.p99_us = hist.percentile(99);
        self.max_us = hist.max;
        (self.hist_buckets, self.hist_counts) = hist.to_sparse();
        if self.elapsed_ms > 0 {
            self.throughput_rps = self.requests as f64 / (self.elapsed_ms as f64 / 1000.0);
        }
    }

    /// Folds another process's phase into this one: counters add,
    /// wall-clock takes the max (the processes ran concurrently), and
    /// percentiles are recomputed over the merged histogram.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.requests += other.requests;
        self.ok += other.ok;
        self.errors += other.errors;
        self.rejected += other.rejected;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.elapsed_ms = self.elapsed_ms.max(other.elapsed_ms);
        let mut hist = Hist::from_sparse(&self.hist_buckets, &self.hist_counts, self.max_us);
        hist.merge_sparse(&other.hist_buckets, &other.hist_counts, other.max_us);
        self.refresh(hist);
    }
}

/// Aggregated results of one load run (or several merged ones).
/// Serializes to the `BENCH_serve_*.json` evidence format.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// Connections opened (across merged processes).
    pub connections: u64,
    /// Driver processes merged into this report.
    pub processes: u64,
    /// In-flight requests per connection.
    pub pipeline: u64,
    /// Requests sent.
    pub requests: u64,
    /// `ok` responses.
    pub ok: u64,
    /// Failures that stood after retries.
    pub errors: u64,
    /// Overload rejections that stood after retries.
    pub rejected: u64,
    /// `ok` responses served from the cache.
    pub cache_hits: u64,
    /// `ok` responses that were computed.
    pub cache_misses: u64,
    /// Distinct request keys observed in `ok` responses.
    pub distinct_keys: u64,
    /// `true` iff every response for the same key carried a
    /// byte-identical outcome (checked via per-key digests, including
    /// across merged processes).
    pub consistent_outcomes: bool,
    /// Wall-clock duration of the run in milliseconds (both phases).
    pub elapsed_ms: u64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median client-observed round-trip latency (µs), over the
    /// merged latency distribution of *all* phases and processes.
    pub p50_us: u64,
    /// 95th-percentile latency (µs), merged distribution.
    pub p95_us: u64,
    /// 99th-percentile latency (µs), merged distribution.
    pub p99_us: u64,
    /// Worst-case latency (µs).
    pub max_us: u64,
    /// Retry attempts performed (beyond each request's first try).
    pub retried: u64,
    /// Transport-level failures observed (each forces a reconnect).
    pub transport_errors: u64,
    /// `ok` responses served by the degraded fallback scheduler.
    pub degraded: u64,
    /// The cold phase: every distinct key requested exactly once.
    pub cold: PhaseStats,
    /// The warm phase: the remaining requests, sampled over the key
    /// space.
    pub warm: PhaseStats,
    /// Merged overall histogram (sparse); stripped from published
    /// bench files.
    pub hist_buckets: Vec<u64>,
    /// Counts matching `hist_buckets`.
    pub hist_counts: Vec<u64>,
    /// `"<key-hex>:<digest-hex>"` per observed key, for cross-process
    /// consistency checking; stripped from published bench files.
    pub key_digests: Vec<String>,
}

impl LoadReport {
    /// Folds another process's report into this one. Counters add,
    /// wall-clock takes the max, percentiles are recomputed over the
    /// merged histograms, and per-key digests are cross-checked:
    /// any key whose outcomes differ between processes flips
    /// `consistent_outcomes`.
    pub fn merge(&mut self, other: &LoadReport) {
        self.connections += other.connections;
        self.processes += other.processes;
        self.pipeline = self.pipeline.max(other.pipeline);
        self.requests += other.requests;
        self.ok += other.ok;
        self.errors += other.errors;
        self.rejected += other.rejected;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.retried += other.retried;
        self.transport_errors += other.transport_errors;
        self.degraded += other.degraded;
        self.elapsed_ms = self.elapsed_ms.max(other.elapsed_ms);
        self.consistent_outcomes &= other.consistent_outcomes;
        self.cold.merge(&other.cold);
        self.warm.merge(&other.warm);
        let mut digests: BTreeMap<String, String> = BTreeMap::new();
        for entry in self.key_digests.iter().chain(&other.key_digests) {
            if let Some((key, digest)) = entry.split_once(':') {
                match digests.get(key) {
                    None => {
                        digests.insert(key.to_owned(), digest.to_owned());
                    }
                    Some(seen) if seen != digest => self.consistent_outcomes = false,
                    Some(_) => {}
                }
            }
        }
        self.distinct_keys = digests.len() as u64;
        self.key_digests = digests
            .into_iter()
            .map(|(k, d)| format!("{k}:{d}"))
            .collect();
        let mut hist = Hist::from_sparse(&self.hist_buckets, &self.hist_counts, self.max_us);
        hist.merge_sparse(&other.hist_buckets, &other.hist_counts, other.max_us);
        self.p50_us = hist.percentile(50);
        self.p95_us = hist.percentile(95);
        self.p99_us = hist.percentile(99);
        self.max_us = hist.max;
        (self.hist_buckets, self.hist_counts) = hist.to_sparse();
        if self.elapsed_ms > 0 {
            self.throughput_rps = self.requests as f64 / (self.elapsed_ms as f64 / 1000.0);
        }
    }

    /// Drops the raw merge payloads (histograms, per-key digests)
    /// before publishing — the derived percentiles and the
    /// consistency verdict stay.
    pub fn strip_raw(&mut self) {
        self.hist_buckets = Vec::new();
        self.hist_counts = Vec::new();
        self.key_digests = Vec::new();
        self.cold.hist_buckets = Vec::new();
        self.cold.hist_counts = Vec::new();
        self.warm.hist_buckets = Vec::new();
        self.warm.hist_counts = Vec::new();
    }
}

// ---- the driver --------------------------------------------------------

enum SampleKind {
    Ok {
        hit: bool,
        degraded: bool,
        key: u64,
        digest: u64,
    },
    Rejected,
    Error,
    Transport,
}

struct Sample {
    latency_us: u64,
    kind: SampleKind,
}

struct ConnResult {
    samples: Vec<Sample>,
    retried: u64,
    transport_errors: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn classify(response: ServeResponse) -> (SampleKind, bool) {
    match response {
        ServeResponse::Scheduled(s) => {
            let json = serde_json::to_string(&s.outcome).unwrap_or_default();
            (
                SampleKind::Ok {
                    hit: s.cache_hit,
                    degraded: s.outcome.degraded,
                    key: s.key,
                    digest: fnv1a(json.as_bytes()),
                },
                false,
            )
        }
        ServeResponse::Failed(e) => {
            let kind = if e.code == crate::protocol::ErrorCode::Overloaded {
                SampleKind::Rejected
            } else {
                SampleKind::Error
            };
            (kind, e.retryable())
        }
        _ => (SampleKind::Error, false),
    }
}

/// Drives one connection through its work list with up to `window`
/// requests in flight; responses arrive in request order (the server's
/// per-connection FIFO guarantee).
fn drive(
    addr: &str,
    keyspace: &KeySpace,
    work: Vec<u32>,
    window: usize,
    retries: u32,
) -> Result<ConnResult, std::io::Error> {
    let mut conn = Conn::open(addr)?;
    let mut queue: VecDeque<(u32, u32)> = work.into_iter().map(|k| (k, 0)).collect();
    let mut inflight: VecDeque<(u32, u32, Instant)> = VecDeque::new();
    let mut result = ConnResult {
        samples: Vec::with_capacity(queue.len()),
        retried: 0,
        transport_errors: 0,
    };
    let window = window.max(1);
    while !queue.is_empty() || !inflight.is_empty() {
        while inflight.len() < window {
            let Some((key, attempts)) = queue.pop_front() else {
                break;
            };
            let sent = Instant::now();
            match conn.send(keyspace.payload(key as usize).as_bytes()) {
                Ok(()) => inflight.push_back((key, attempts, sent)),
                Err(_) => {
                    queue.push_front((key, attempts));
                    recover(
                        addr,
                        &mut conn,
                        &mut queue,
                        &mut inflight,
                        &mut result,
                        retries,
                    )?;
                }
            }
        }
        let Some(&(key, attempts, sent)) = inflight.front() else {
            continue;
        };
        match conn.receive() {
            Ok(response) => {
                inflight.pop_front();
                let latency_us = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
                let (kind, retryable) = classify(response);
                if retryable && attempts < retries {
                    result.retried += 1;
                    queue.push_back((key, attempts + 1));
                } else {
                    result.samples.push(Sample { latency_us, kind });
                }
            }
            Err(_) => {
                recover(
                    addr,
                    &mut conn,
                    &mut queue,
                    &mut inflight,
                    &mut result,
                    retries,
                )?;
            }
        }
    }
    Ok(result)
}

/// After a transport failure: re-open the connection and either
/// re-queue or fail every in-flight request.
fn recover(
    addr: &str,
    conn: &mut Conn,
    queue: &mut VecDeque<(u32, u32)>,
    inflight: &mut VecDeque<(u32, u32, Instant)>,
    result: &mut ConnResult,
    retries: u32,
) -> Result<(), std::io::Error> {
    result.transport_errors += 1;
    while let Some((key, attempts, sent)) = inflight.pop_front() {
        if attempts < retries {
            result.retried += 1;
            queue.push_back((key, attempts + 1));
        } else {
            result.samples.push(Sample {
                latency_us: u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX),
                kind: SampleKind::Transport,
            });
        }
    }
    *conn = Conn::open(addr)?;
    Ok(())
}

fn run_phase(
    config: &LoadConfig,
    keyspace: &KeySpace,
    work: Vec<Vec<u32>>,
) -> Result<(Vec<Sample>, Duration, u64, u64), std::io::Error> {
    let started = Instant::now();
    let results: Vec<ConnResult> = std::thread::scope(|s| {
        let handles: Vec<_> = work
            .into_iter()
            .map(|list| {
                s.spawn(move || {
                    drive(
                        &config.addr,
                        keyspace,
                        list,
                        config.pipeline,
                        config.retries,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread must not panic"))
            .collect::<Result<Vec<_>, std::io::Error>>()
    })?;
    let elapsed = started.elapsed();
    let mut samples = Vec::new();
    let mut retried = 0;
    let mut transport_errors = 0;
    for mut r in results {
        samples.append(&mut r.samples);
        retried += r.retried;
        transport_errors += r.transport_errors;
    }
    Ok((samples, elapsed, retried, transport_errors))
}

/// Runs the two-phase load against a server and aggregates the report:
/// a **cold** phase requesting each distinct key exactly once (misses
/// dominate), then a **warm** phase sampling the key space for the
/// remaining request budget (hits dominate).
///
/// # Errors
///
/// [`McdsError::Io`] when a connection cannot be established or
/// re-established. Protocol-level failures (`error`/`rejected`
/// responses) are *counted*, not returned as errors.
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, McdsError> {
    let keyspace = KeySpace::new(config.distinct_keys.max(1), config);
    let conns = config.connections.max(1);
    let total = config.requests.max(1);
    let cold_n = keyspace.len().min(total);

    // Cold: key k → connection k mod conns, each key exactly once.
    let mut cold_work: Vec<Vec<u32>> = vec![Vec::new(); conns];
    for k in 0..cold_n {
        cold_work[k % conns].push(k as u32);
    }
    let (cold_samples, cold_elapsed, cold_retried, cold_terr) =
        run_phase(config, &keyspace, cold_work)?;

    // Warm: the remaining budget, sampled deterministically per
    // connection.
    let warm_total = total - cold_n;
    let mut warm_work: Vec<Vec<u32>> = vec![Vec::new(); conns];
    for (i, list) in warm_work.iter_mut().enumerate() {
        let count = warm_total / conns + usize::from(i < warm_total % conns);
        list.extend((0..count).map(|j| {
            (splitmix64(config.seed ^ ((i as u64) << 32) ^ j as u64) % keyspace.len() as u64) as u32
        }));
    }
    let (warm_samples, warm_elapsed, warm_retried, warm_terr) = if warm_total > 0 {
        run_phase(config, &keyspace, warm_work)?
    } else {
        (Vec::new(), Duration::ZERO, 0, 0)
    };

    let cold = PhaseStats::from_samples(&cold_samples, cold_elapsed);
    let warm = PhaseStats::from_samples(&warm_samples, warm_elapsed);
    let elapsed = cold_elapsed + warm_elapsed;

    let mut hist = Hist::new();
    let mut digests: BTreeMap<u64, u64> = BTreeMap::new();
    let mut consistent = true;
    let mut degraded = 0;
    for sample in cold_samples.iter().chain(&warm_samples) {
        hist.record(sample.latency_us);
        if let SampleKind::Ok {
            degraded: d,
            key,
            digest,
            ..
        } = sample.kind
        {
            degraded += u64::from(d);
            match digests.get(&key) {
                None => {
                    digests.insert(key, digest);
                }
                Some(&seen) if seen != digest => consistent = false,
                Some(_) => {}
            }
        }
    }

    let elapsed_ms = u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX);
    let requests = cold.requests + warm.requests;
    let (hist_buckets, hist_counts) = hist.to_sparse();
    Ok(LoadReport {
        connections: conns as u64,
        processes: 1,
        pipeline: config.pipeline.max(1) as u64,
        requests,
        ok: cold.ok + warm.ok,
        errors: cold.errors + warm.errors,
        rejected: cold.rejected + warm.rejected,
        cache_hits: cold.cache_hits + warm.cache_hits,
        cache_misses: cold.cache_misses + warm.cache_misses,
        distinct_keys: digests.len() as u64,
        consistent_outcomes: consistent,
        elapsed_ms,
        throughput_rps: if elapsed.as_secs_f64() > 0.0 {
            requests as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        p50_us: hist.percentile(50),
        p95_us: hist.percentile(95),
        p99_us: hist.percentile(99),
        max_us: hist.max,
        retried: cold_retried + warm_retried,
        transport_errors: cold_terr + warm_terr,
        degraded,
        cold,
        warm,
        hist_buckets,
        hist_counts,
        key_digests: digests
            .into_iter()
            .map(|(k, d)| format!("{}:{d:016x}", format_key(k)))
            .collect(),
    })
}

// ---- misbehaving clients ----------------------------------------------

/// How an abusive peer misbehaves — each mode targets one of the
/// server's slow-peer defenses (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbuseMode {
    /// Writes a valid frame one byte at a time with long pauses —
    /// a slow-loris writer that never completes a frame quickly. The
    /// idle reaper should drop it (`last_frame` never advances).
    SlowWriter,
    /// Pipelines schedule requests as fast as possible and never
    /// reads a byte back — the buffer cap and the write-stall timeout
    /// should bound the server's memory and reclaim the fd.
    StalledReader,
    /// Connects and sends nothing — the connect-and-idle defense
    /// should reap it.
    IdleHolder,
    /// Floods small valid frames without reading responses — admission
    /// quotas, the buffer cap, and the write-stall timeout all engage.
    FrameFlood,
}

impl AbuseMode {
    /// Stable wire/report name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AbuseMode::SlowWriter => "slow_writer",
            AbuseMode::StalledReader => "stalled_reader",
            AbuseMode::IdleHolder => "idle_holder",
            AbuseMode::FrameFlood => "frame_flood",
        }
    }

    /// Parses a report name back into a mode.
    #[must_use]
    pub fn from_name(name: &str) -> Option<AbuseMode> {
        match name {
            "slow_writer" => Some(AbuseMode::SlowWriter),
            "stalled_reader" => Some(AbuseMode::StalledReader),
            "idle_holder" => Some(AbuseMode::IdleHolder),
            "frame_flood" => Some(AbuseMode::FrameFlood),
            _ => None,
        }
    }
}

impl std::fmt::Display for AbuseMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One abusive peer population.
#[derive(Debug, Clone)]
pub struct AbuseConfig {
    /// Server address.
    pub addr: String,
    /// How the peers misbehave.
    pub mode: AbuseMode,
    /// Concurrent abusive connections.
    pub clients: usize,
    /// How long to keep misbehaving (per client; reconnects on server
    /// closes until the budget runs out).
    pub duration_ms: u64,
}

/// What one abusive population managed to inflict (and absorb).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AbuseReport {
    /// The [`AbuseMode`] name.
    pub mode: String,
    /// Concurrent abusive clients.
    pub clients: u64,
    /// Connections opened across the run (first + reconnects).
    pub connects: u64,
    /// Complete frames written (0 for idle holders; partial for slow
    /// writers).
    pub frames_sent: u64,
    /// Bytes written to the server.
    pub bytes_sent: u64,
    /// Times the server terminated the connection (reset, EOF, or a
    /// refused write) — the defenses doing their job.
    pub server_closed: u64,
    /// Wall-clock duration of the abuse run in milliseconds.
    pub elapsed_ms: u64,
}

/// One abusive client loop: misbehave until the deadline, reconnecting
/// whenever the server drops us.
fn abuse_client(addr: &str, mode: AbuseMode, until: Instant, report: &mut AbuseReport) {
    let ping = {
        let mut line = ServeRequest::Ping.encode();
        line.push('\n');
        line
    };
    let flood_payload = {
        // A real schedule request so floods exercise admission, not
        // just the parse path.
        let mut line = ServeRequest::Schedule(ScheduleSpec::workload("e1")).encode();
        line.push('\n');
        line
    };
    while Instant::now() < until {
        let Ok(stream) = TcpStream::connect(addr) else {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        report.connects += 1;
        let mut stream = stream;
        let _ = stream.set_nodelay(true);
        let closed = match mode {
            AbuseMode::IdleHolder => {
                // Hold the fd and wait for the server to reap us.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                let mut byte = [0u8; 1];
                loop {
                    if Instant::now() >= until {
                        break false;
                    }
                    match stream.read(&mut byte) {
                        Ok(0) => break true,
                        Ok(_) => {}
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut => {}
                        Err(_) => break true,
                    }
                }
            }
            AbuseMode::SlowWriter => {
                // One byte every 10ms: the frame technically grows,
                // but `last_frame` never advances.
                let mut closed = false;
                'conn: loop {
                    for &b in ping.as_bytes() {
                        if Instant::now() >= until {
                            break 'conn;
                        }
                        if stream.write_all(&[b]).is_err() {
                            closed = true;
                            break 'conn;
                        }
                        report.bytes_sent += 1;
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    report.frames_sent += 1;
                }
                closed
            }
            AbuseMode::StalledReader | AbuseMode::FrameFlood => {
                // Write hard, read never. The stalled reader paces
                // itself a little so the server's write buffer (not
                // the client's socket) is the contended resource.
                let payload = flood_payload.as_bytes();
                let pace = if mode == AbuseMode::StalledReader {
                    Duration::from_millis(1)
                } else {
                    Duration::ZERO
                };
                let mut closed = false;
                while Instant::now() < until {
                    match stream.write(payload) {
                        Ok(0) | Err(_) => {
                            closed = true;
                            break;
                        }
                        Ok(n) => {
                            report.bytes_sent += n as u64;
                            if n == payload.len() {
                                report.frames_sent += 1;
                            }
                        }
                    }
                    if !pace.is_zero() {
                        std::thread::sleep(pace);
                    }
                }
                closed
            }
        };
        if closed {
            report.server_closed += 1;
        }
    }
}

/// Unleashes one abusive population against a server and reports what
/// it managed to do. Never fails: an unreachable server just produces
/// a report with zero connects.
#[must_use]
pub fn run_abuse(config: &AbuseConfig) -> AbuseReport {
    let started = Instant::now();
    let until = started + Duration::from_millis(config.duration_ms);
    let clients = config.clients.max(1);
    let reports: Vec<AbuseReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(|| {
                    let mut report = AbuseReport::default();
                    abuse_client(&config.addr, config.mode, until, &mut report);
                    report
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("abuse thread must not panic"))
            .collect()
    });
    let mut merged = AbuseReport {
        mode: config.mode.as_str().to_owned(),
        clients: clients as u64,
        elapsed_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
        ..AbuseReport::default()
    };
    for r in reports {
        merged.connects += r.connects;
        merged.frames_sent += r.frames_sent;
        merged.bytes_sent += r.bytes_sent;
        merged.server_closed += r.server_closed;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abuse_mode_names_round_trip() {
        for mode in [
            AbuseMode::SlowWriter,
            AbuseMode::StalledReader,
            AbuseMode::IdleHolder,
            AbuseMode::FrameFlood,
        ] {
            assert_eq!(AbuseMode::from_name(mode.as_str()), Some(mode));
        }
        assert_eq!(AbuseMode::from_name("polite_client"), None);
    }

    #[test]
    fn buckets_are_monotone_and_invertible() {
        let mut last = None;
        for v in (0..4096u64).chain([1 << 20, 1 << 40, u64::MAX - 1, u64::MAX]) {
            let b = bucket_of(v);
            assert!(bucket_high(b) >= v, "upper bound covers the value");
            if let Some((lv, lb)) = last {
                assert!(b >= lb, "bucket index monotone: {lv} → {v}");
            }
            last = Some((v, b));
        }
        // Relative error bound: upper bound within ~2/32 of the value.
        for v in [100u64, 10_000, 1_000_000, 123_456_789] {
            let high = bucket_high(bucket_of(v));
            assert!(high - v <= v / 16 + 1, "{v} → {high}");
        }
    }

    #[test]
    fn hist_percentiles_match_nearest_rank_on_exact_values() {
        let mut hist = Hist::new();
        for v in 1..=100u64 {
            hist.record(v);
        }
        // Values ≤ 2^5 land in exact buckets; larger ones report the
        // bucket upper bound (never understating).
        assert_eq!(hist.percentile(0), 1);
        assert!(hist.percentile(50) >= 50 && hist.percentile(50) <= 52);
        // Nearest-rank p99 of 1..=100 is 99; the histogram may round
        // up within its ~3% bucket, never down.
        assert!(hist.percentile(99) >= 99 && hist.percentile(99) <= 100);
        assert_eq!(hist.max, 100);
    }

    #[test]
    fn merged_reports_recompute_percentiles_and_cross_check_digests() {
        let mut a = report_with(vec![("00aa".into(), "11".into())], &[10, 20, 30]);
        let b = report_with(vec![("00bb".into(), "22".into())], &[1000, 2000, 3000]);
        a.merge(&b);
        assert_eq!(a.requests, 6);
        assert_eq!(a.distinct_keys, 2);
        assert!(a.consistent_outcomes);
        // Nearest-rank p99 of the merged [10,20,30,1000,2000,3000] is
        // 2000 — well above either input's solo p99 scale.
        assert!(a.p99_us >= 2000, "p99 comes from the merged vector");
        // A conflicting digest for a shared key flips consistency.
        let c = report_with(vec![("00aa".into(), "33".into())], &[5]);
        a.merge(&c);
        assert!(!a.consistent_outcomes);
    }

    fn report_with(digests: Vec<(String, String)>, lats: &[u64]) -> LoadReport {
        let samples: Vec<Sample> = lats
            .iter()
            .map(|&l| Sample {
                latency_us: l,
                kind: SampleKind::Rejected,
            })
            .collect();
        let phase = PhaseStats::from_samples(&samples, Duration::from_millis(10));
        let mut hist = Hist::new();
        for &l in lats {
            hist.record(l);
        }
        let (hist_buckets, hist_counts) = hist.to_sparse();
        LoadReport {
            connections: 1,
            processes: 1,
            pipeline: 1,
            requests: lats.len() as u64,
            ok: 0,
            errors: 0,
            rejected: lats.len() as u64,
            cache_hits: 0,
            cache_misses: 0,
            distinct_keys: digests.len() as u64,
            consistent_outcomes: true,
            elapsed_ms: 10,
            throughput_rps: 0.0,
            p50_us: hist.percentile(50),
            p95_us: hist.percentile(95),
            p99_us: hist.percentile(99),
            max_us: hist.max,
            retried: 0,
            transport_errors: 0,
            degraded: 0,
            cold: phase.clone(),
            warm: PhaseStats::default(),
            hist_buckets,
            hist_counts,
            key_digests: digests
                .into_iter()
                .map(|(k, d)| format!("{k}:{d}"))
                .collect(),
        }
    }
}
