//! The scheduling daemon.
//!
//! One listener thread accepts connections; each connection gets a
//! scoped handler thread that parses newline-delimited requests and
//! answers them. `schedule` requests resolve to a canonical
//! [`request_key`] and go through the [`OutcomeCache`]: hits answer
//! immediately, the single leader per key is pushed onto a **bounded
//! admission queue** (full queue → explicit `rejected` response, not
//! unbounded memory) and computed by a fixed worker pool through
//! [`Pipeline`] with a [`CancelToken`] deadline. The `shutdown` verb
//! drains gracefully: the listener stops accepting, every connection
//! finishes its buffered requests, the workers finish the queue, then
//! [`Server::run`] returns.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mcds_core::{
    request_key, CancelToken, Fault, FaultPlan, McdsError, MetricsRegistry, Pipeline, PipelineRun,
    SchedulerConfig, SchedulerKind, Seam,
};
use mcds_model::{Application, ArchParams, ClusterSchedule, Words};
use serde::{Deserialize, Serialize};

use crate::cache::{degraded_key, Begin, CachedResult, FlightGuard, OutcomeCache};
use crate::protocol::{
    format_key, FrameBuffer, FrameError, Outcome, ScheduleRequest, ScheduleResponse, StatEntry,
};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads computing schedules.
    pub workers: usize,
    /// Admission queue capacity; a full queue rejects instead of
    /// buffering. `0` rejects every compute (useful for overload
    /// tests).
    pub queue_depth: usize,
    /// Poll interval for accept/read loops while idle, in
    /// milliseconds.
    pub poll_ms: u64,
    /// Largest accepted request frame in bytes; a connection that
    /// buffers more without a newline gets a typed error and is
    /// dropped instead of growing memory without bound.
    pub max_frame_bytes: usize,
    /// Deterministic fault-injection plan for robustness testing
    /// (`None` in production: zero injected faults).
    pub faults: Option<Arc<FaultPlan>>,
    /// Enables the degraded fallback path: a full-CDS request whose
    /// run is cancelled (deadline, injected stage fault) is re-run
    /// through the cheaper within-cluster-only scheduler and served
    /// with `degraded: true` instead of failing.
    pub degrade: bool,
    /// Requests with a deadline below this many milliseconds skip the
    /// full CDS entirely and go straight to the degraded scheduler
    /// (`0` disables the upfront check).
    pub degrade_below_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .clamp(1, 8),
            queue_depth: 64,
            poll_ms: 25,
            max_frame_bytes: 256 * 1024,
            faults: None,
            degrade: true,
            degrade_below_ms: 0,
        }
    }
}

/// What one server lifetime handled, returned by [`Server::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Total request lines handled.
    pub requests: u64,
    /// `schedule` cache hits (including single-flight waiters).
    pub cache_hits: u64,
    /// `schedule` computations performed.
    pub cache_misses: u64,
    /// Overload rejections (admission queue full).
    pub rejected: u64,
    /// Runs abandoned on a deadline.
    pub deadline_misses: u64,
    /// Malformed or failed requests.
    pub errors: u64,
    /// Worker threads recycled after a panic (supervised recovery).
    #[serde(default)]
    pub worker_restarts: u64,
    /// Requests served by the degraded fallback scheduler.
    #[serde(default)]
    pub degraded: u64,
    /// Faults the attached [`FaultPlan`] injected (all seams).
    #[serde(default)]
    pub faults_injected: u64,
}

/// One admitted computation.
struct Job {
    app: Application,
    sched: Option<ClusterSchedule>,
    arch: ArchParams,
    kind: SchedulerKind,
    /// `None` for degraded jobs: they run to completion unconditionally
    /// — the degraded path exists to return *something* before giving
    /// up, so it must not itself be cancellable.
    cancel: Option<CancelToken>,
    /// The *primary* request key (the guard may be for the degraded
    /// key; this one derives the degraded key for fallback publishes).
    key: u64,
    /// `true` when the request was routed to the degraded scheduler
    /// upfront (tight deadline).
    degraded: bool,
    guard: FlightGuard,
    tx: Sender<CachedResult>,
}

struct QueueState {
    jobs: VecDeque<Box<Job>>,
    closed: bool,
}

/// The bounded admission queue.
struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    depth: usize,
}

impl JobQueue {
    fn new(depth: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            depth,
        }
    }

    /// Admits the job, or hands it back when the queue is full or
    /// closed — the caller turns that into an explicit rejection.
    fn try_push(&self, job: Box<Job>) -> Result<(), Box<Job>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed || state.jobs.len() >= self.depth {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Next job, blocking; `None` once the queue is closed and empty.
    fn pop(&self) -> Option<Box<Job>> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }
}

/// Shared state of one server lifetime.
struct Ctx {
    cache: Arc<OutcomeCache>,
    metrics: Arc<MetricsRegistry>,
    queue: JobQueue,
    shutdown: AtomicBool,
    poll: Duration,
    max_frame_bytes: usize,
    faults: Option<Arc<FaultPlan>>,
    fault_delay: Duration,
    degrade: bool,
    degrade_below_ms: u64,
}

impl Ctx {
    /// One fault decision at a serve-side seam; firing bumps the
    /// seam's `fault.*` counter.
    fn fault(&self, seam: Seam) -> Option<Fault> {
        let fault = self.faults.as_ref()?.decide(seam)?;
        self.metrics.incr(seam.metric());
        Some(fault)
    }
}

/// A bound, not-yet-running scheduling daemon.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServeConfig,
    metrics: Arc<MetricsRegistry>,
}

impl Server {
    /// Binds the listener (without accepting yet).
    ///
    /// # Errors
    ///
    /// [`McdsError::Io`] when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Server, McdsError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            config,
            metrics: Arc::new(MetricsRegistry::new()),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (shared with the pipelines it
    /// runs; also exposed over the wire via the `stats` verb).
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Serves until a `shutdown` request arrives, then drains: buffered
    /// requests on open connections are answered, queued jobs finish,
    /// and the final counters are returned.
    ///
    /// # Errors
    ///
    /// [`McdsError::Io`] on listener failures. Per-connection and
    /// per-request errors never abort the server.
    pub fn run(self) -> Result<ServeSummary, McdsError> {
        self.listener.set_nonblocking(true)?;
        let ctx = Ctx {
            cache: OutcomeCache::new(),
            metrics: Arc::clone(&self.metrics),
            queue: JobQueue::new(self.config.queue_depth),
            shutdown: AtomicBool::new(false),
            poll: Duration::from_millis(self.config.poll_ms.max(1)),
            max_frame_bytes: self.config.max_frame_bytes,
            fault_delay: Duration::from_micros(
                self.config
                    .faults
                    .as_ref()
                    .map_or(0, |f| f.config().delay_us),
            ),
            faults: self.config.faults.clone(),
            degrade: self.config.degrade,
            degrade_below_ms: self.config.degrade_below_ms,
        };
        std::thread::scope(|s| -> Result<(), McdsError> {
            for _ in 0..self.config.workers.max(1) {
                s.spawn(|| worker_loop(&ctx));
            }
            let mut conns = Vec::new();
            while !ctx.shutdown.load(Ordering::Acquire) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let ctx = &ctx;
                        conns.push(s.spawn(move || handle_conn(stream, ctx)));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ctx.poll);
                    }
                    Err(e) => {
                        ctx.shutdown.store(true, Ordering::Release);
                        ctx.queue.close();
                        return Err(e.into());
                    }
                }
            }
            // Drain: connections first (they may still enqueue), then
            // the queue; the workers exit once it is closed and empty.
            for c in conns {
                let _ = c.join();
            }
            ctx.queue.close();
            Ok(())
        })?;
        let count = |name: &str| self.metrics.get(name).unwrap_or(0);
        Ok(ServeSummary {
            requests: count("serve.requests"),
            cache_hits: count("serve.cache.hits"),
            cache_misses: count("serve.cache.misses"),
            rejected: count("serve.rejected"),
            deadline_misses: count("serve.deadline_misses"),
            errors: count("serve.errors"),
            worker_restarts: count("serve.worker_restarts"),
            degraded: count("serve.degraded"),
            faults_injected: self
                .config
                .faults
                .as_ref()
                .map_or(0, |f| f.snapshot().total_fired()),
        })
    }
}

/// Condenses a pipeline run into the wire outcome.
fn outcome_of(run: &PipelineRun, app: &str, kind: SchedulerKind, degraded: bool) -> Outcome {
    let plan = run.plan();
    Outcome {
        app: app.to_owned(),
        scheduler: kind.name().to_owned(),
        clusters: run.schedule().len() as u64,
        rf: plan.rf(),
        dt_avoided_words: plan.dt_avoided_per_iter().get(),
        data_words: plan.total_data_words().get(),
        context_words: plan.total_context_words(),
        total_cycles: run.report().total().get(),
        degraded,
    }
}

/// Runs one pipeline under the supervisor's `catch_unwind`. `faulted`
/// attaches the server's fault plan (the degraded fallback runs clean
/// so it is guaranteed to complete whenever scheduling is feasible).
fn supervised_run(
    ctx: &Ctx,
    app: Application,
    sched: Option<ClusterSchedule>,
    arch: ArchParams,
    kind: SchedulerKind,
    cancel: Option<CancelToken>,
    faulted: bool,
) -> Result<Result<PipelineRun, McdsError>, ()> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if faulted && matches!(ctx.fault(Seam::WorkerRun), Some(Fault::WorkerPanic)) {
            panic!("injected worker panic");
        }
        let mut pipeline = Pipeline::new(app)
            .arch(arch)
            .scheduler(kind)
            .metrics(Arc::clone(&ctx.metrics));
        if let Some(token) = cancel {
            pipeline = pipeline.cancellation(token);
        }
        if faulted {
            if let Some(plan) = &ctx.faults {
                pipeline = pipeline.faults(Arc::clone(plan));
            }
        }
        if let Some(sched) = sched {
            pipeline = pipeline.schedule(sched);
        }
        pipeline.run()
    }))
    .map_err(|_| ())
}

/// One worker under its supervisor: pops admitted jobs and computes
/// them through the pipeline. Deterministic results (success or
/// scheduling error) are published to the cache; abandoned and faulted
/// runs are not. A panicking run (injected or real) is contained by
/// `catch_unwind`: the worker recycles itself for the next job,
/// `serve.worker_restarts` counts the recycle, and the requester gets
/// a typed retryable error instead of a hung channel.
fn worker_loop(ctx: &Ctx) {
    while let Some(job) = ctx.queue.pop() {
        let Job {
            app,
            sched,
            arch,
            kind,
            cancel,
            key,
            degraded,
            guard,
            tx,
        } = *job;
        let app_name = app.name().to_owned();
        // Kept aside for the degraded fallback re-run.
        let fallback_inputs = (app.clone(), sched.clone());

        let caught = supervised_run(ctx, app, sched, arch, kind, cancel, !degraded);
        let result = match caught {
            Err(()) => {
                // Poisoned worker: recycle in place, never cache.
                ctx.metrics.incr("serve.worker_restarts");
                guard.abandon();
                let _ = tx.send(Arc::new(Err(
                    "worker panicked; the request is retryable".to_owned()
                )));
                continue;
            }
            Ok(result) => result,
        };
        match result {
            Ok(run) => {
                if degraded {
                    ctx.metrics.incr("serve.degraded");
                }
                let shared = guard.fulfill(Ok(outcome_of(&run, &app_name, kind, degraded)));
                let _ = tx.send(shared);
            }
            Err(McdsError::Cancelled(reason)) => {
                // Not a pure function of the request — never cached.
                ctx.metrics.incr("serve.deadline_misses");
                if ctx.degrade && kind == SchedulerKind::Cds {
                    let (app, sched) = fallback_inputs;
                    // Fall back to the cheaper within-cluster-only
                    // scheduler, clean (no faults, no deadline), and
                    // serve + cache it under the *degraded* key. The
                    // primary key stays uncomputed so a later request
                    // with a generous deadline gets the full CDS.
                    // If the fallback fails too (infeasible, or it
                    // panicked), fall through to the plain abandon.
                    if let Ok(Ok(run)) =
                        supervised_run(ctx, app, sched, arch, SchedulerKind::Ds, None, false)
                    {
                        ctx.metrics.incr("serve.degraded");
                        let outcome = outcome_of(&run, &app_name, SchedulerKind::Ds, true);
                        let shared = ctx.cache.publish(degraded_key(key), Ok(outcome));
                        guard.abandon();
                        let _ = tx.send(shared);
                        continue;
                    }
                }
                guard.abandon();
                let _ = tx.send(Arc::new(Err(format!("run abandoned: {reason}"))));
            }
            Err(e @ McdsError::Faulted(_)) => {
                // Injected fault: transient — never cached, retryable.
                guard.abandon();
                let _ = tx.send(Arc::new(Err(e.to_string())));
            }
            Err(e) => {
                // Scheduling errors are deterministic → cacheable.
                let shared = guard.fulfill(Err(e.to_string()));
                let _ = tx.send(shared);
            }
        }
    }
}

/// One connection: reads bounded request frames, answers each with one
/// response line. Any per-request failure produces a typed `error`
/// response on this connection only — the server and its other
/// connections are unaffected. With a fault plan attached, the
/// connection also injects the serve-side I/O faults (pre-processing
/// disconnects, mid-frame write truncation, slow-loris writes). Read
/// faults are decided once per complete frame, not per `read` call, so
/// the fault sequence does not depend on TCP segmentation.
fn handle_conn(stream: TcpStream, ctx: &Ctx) {
    let _ = stream.set_read_timeout(Some(ctx.poll));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let mut frames = FrameBuffer::new(ctx.max_frame_bytes);
    let mut chunk = [0u8; 4096];
    loop {
        // Answer every complete frame already buffered.
        loop {
            match frames.next_frame() {
                Ok(Some(line)) => {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    if matches!(ctx.fault(Seam::ServeRead), Some(Fault::Disconnect)) {
                        // Injected disconnect: the request is dropped
                        // before processing; the client must retry.
                        return;
                    }
                    let response = handle_line(line, ctx);
                    if write_response(&mut stream, &response, ctx).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(FrameError::InvalidUtf8) => {
                    // The bad frame was consumed — answer typed and
                    // keep serving this connection.
                    ctx.metrics.incr("serve.errors");
                    let response =
                        ScheduleResponse::error("frame", FrameError::InvalidUtf8.to_string());
                    if write_response(&mut stream, &response, ctx).is_err() {
                        return;
                    }
                }
                Err(err @ FrameError::Oversized { .. }) => {
                    // The frame boundary is lost: answer typed, then
                    // drop the connection instead of buffering forever.
                    ctx.metrics.incr("serve.errors");
                    let response = ScheduleResponse::error("frame", err.to_string());
                    let _ = write_response(&mut stream, &response, ctx);
                    return;
                }
            }
        }
        // Between frames: honor a drain request, then wait for more
        // bytes.
        if ctx.shutdown.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => frames.extend(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return,
        }
    }
}

/// Serializes and writes one response frame, applying any fired
/// write-side fault.
fn write_response(
    stream: &mut TcpStream,
    response: &ScheduleResponse,
    ctx: &Ctx,
) -> std::io::Result<()> {
    let Ok(mut out) = serde_json::to_string(response) else {
        return Ok(());
    };
    out.push('\n');
    let bytes = out.as_bytes();
    match ctx.fault(Seam::ServeWrite) {
        Some(Fault::TruncateWrite) => {
            // Mid-frame disconnect: the client sees a short read with
            // no terminating newline and must treat it as transport
            // failure.
            let _ = stream.write_all(&bytes[..bytes.len() / 2]);
            let _ = stream.flush();
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "injected mid-frame disconnect",
            ))
        }
        Some(Fault::SlowWrite) => {
            // Slow-loris writer: dribble the frame out in eight delayed
            // chunks. The frame still completes, so a patient client
            // succeeds without a retry.
            for piece in bytes.chunks(bytes.len().div_ceil(8).max(1)) {
                stream.write_all(piece)?;
                stream.flush()?;
                std::thread::sleep(ctx.fault_delay);
            }
            Ok(())
        }
        Some(_) | None => stream.write_all(bytes),
    }
}

fn handle_line(line: &str, ctx: &Ctx) -> ScheduleResponse {
    let started = Instant::now();
    ctx.metrics.incr("serve.requests");
    let mut response = match serde_json::from_str::<ScheduleRequest>(line) {
        Ok(request) => dispatch(request, ctx),
        Err(e) => {
            ctx.metrics.incr("serve.errors");
            ScheduleResponse::error("unknown", format!("malformed request: {e}"))
        }
    };
    response.latency_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    ctx.metrics.observe("serve.latency_us", response.latency_us);
    response
}

fn dispatch(request: ScheduleRequest, ctx: &Ctx) -> ScheduleResponse {
    match request.verb.as_str() {
        "ping" => ScheduleResponse::ok("ping"),
        "stats" => ScheduleResponse::stats(
            ctx.metrics
                .snapshot()
                .into_iter()
                .map(|(name, value)| StatEntry { name, value })
                .collect(),
        ),
        "shutdown" => {
            ctx.shutdown.store(true, Ordering::Release);
            ScheduleResponse::ok("shutdown")
        }
        "schedule" => schedule(request, ctx),
        other => {
            ctx.metrics.incr("serve.errors");
            ScheduleResponse::error(
                other,
                format!("unknown verb `{other}` (expected schedule, ping, stats, shutdown)"),
            )
        }
    }
}

/// Resolves a `schedule` request into pipeline inputs.
fn resolve(
    request: ScheduleRequest,
) -> Result<
    (
        Application,
        Option<ClusterSchedule>,
        ArchParams,
        SchedulerKind,
    ),
    String,
> {
    let kind: SchedulerKind = request
        .scheduler
        .as_deref()
        .unwrap_or("cds")
        .parse()
        .map_err(|e: McdsError| e.to_string())?;
    let arch = match request.arch {
        Some(arch) => arch,
        None => ArchParams::m1()
            .to_builder()
            .fb_set_words(Words::kilo(request.fb_kw.unwrap_or(1).max(1)))
            .build(),
    };
    let (app, sched) = match (request.app, request.workload.as_deref()) {
        (Some(_), Some(_)) => return Err("`app` and `workload` are mutually exclusive".to_owned()),
        (None, None) => return Err("schedule needs `app` or `workload`".to_owned()),
        (Some(app), None) => {
            app.validate().map_err(|e| format!("invalid app: {e}"))?;
            (app, None)
        }
        (None, Some(name)) => {
            let iterations = request.iterations.unwrap_or(16);
            let (app, sched) = mcds_workloads::mix::by_name(name, iterations)
                .ok_or_else(|| format!("unknown workload `{name}` (and iterations must be > 0)"))?;
            (app, Some(sched))
        }
    };
    Ok((app, sched, arch, kind))
}

fn schedule(request: ScheduleRequest, ctx: &Ctx) -> ScheduleResponse {
    let deadline_ms = request.deadline_ms;
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let (app, sched, arch, kind) = match resolve(request) {
        Ok(inputs) => inputs,
        Err(message) => {
            ctx.metrics.incr("serve.errors");
            return ScheduleResponse::error("schedule", message);
        }
    };
    let key = request_key(
        &app,
        sched.as_ref(),
        &arch,
        kind,
        &SchedulerConfig::default(),
    );
    // Upfront degrade: when the deadline is too tight for the full CDS
    // to be worth attempting, route the request straight to the
    // cheaper within-cluster-only scheduler (its own cache key, no
    // cancellation — it exists to succeed).
    let degraded_upfront = ctx.degrade
        && ctx.degrade_below_ms > 0
        && kind == SchedulerKind::Cds
        && deadline_ms.is_some_and(|ms| ms < ctx.degrade_below_ms);
    let entry_key = if degraded_upfront {
        degraded_key(key)
    } else {
        key
    };
    match ctx.cache.begin(entry_key, deadline) {
        Begin::Hit(result) => {
            ctx.metrics.incr("serve.cache.hits");
            cached_response(entry_key, true, &result, ctx)
        }
        Begin::TimedOut => {
            ctx.metrics.incr("serve.deadline_misses");
            let mut r =
                ScheduleResponse::transient_error("schedule", "run abandoned: deadline exceeded");
            r.key = Some(format_key(entry_key));
            r
        }
        Begin::Lead(guard) => {
            let cancel = if degraded_upfront {
                None
            } else {
                Some(deadline.map_or_else(CancelToken::new, CancelToken::at))
            };
            let (tx, rx) = std::sync::mpsc::channel();
            let job = Box::new(Job {
                app,
                sched,
                arch,
                kind: if degraded_upfront {
                    SchedulerKind::Ds
                } else {
                    kind
                },
                cancel,
                key,
                degraded: degraded_upfront,
                guard,
                tx,
            });
            if let Err(job) = ctx.queue.try_push(job) {
                ctx.metrics.incr("serve.rejected");
                job.guard.abandon();
                return ScheduleResponse::rejected(entry_key);
            }
            match rx.recv() {
                Ok(result) => {
                    ctx.metrics.incr("serve.cache.misses");
                    // A fallback-degraded outcome lives under the
                    // degraded key, not the one we began with.
                    let served_key = match result.as_ref() {
                        Ok(outcome) if outcome.degraded => degraded_key(key),
                        _ => entry_key,
                    };
                    cached_response(served_key, false, &result, ctx)
                }
                Err(_) => {
                    ctx.metrics.incr("serve.errors");
                    let mut r = ScheduleResponse::transient_error(
                        "schedule",
                        "internal: worker dropped the request",
                    );
                    r.key = Some(format_key(entry_key));
                    r
                }
            }
        }
    }
}

/// `true` for worker-reported failure messages that are not a pure
/// function of the request (never cached; the client may retry them).
fn transient_message(message: &str) -> bool {
    message.starts_with("run abandoned:")
        || message.starts_with("injected fault:")
        || message.starts_with("worker panicked")
}

fn cached_response(key: u64, hit: bool, result: &CachedResult, ctx: &Ctx) -> ScheduleResponse {
    let cache = if hit { "hit" } else { "miss" };
    match result.as_ref() {
        Ok(outcome) => ScheduleResponse::outcome(key, hit, outcome.clone()),
        Err(message) => {
            ctx.metrics.incr("serve.errors");
            let mut r = if transient_message(message) {
                ScheduleResponse::transient_error("schedule", message.clone())
            } else {
                ScheduleResponse::error("schedule", message.clone())
            };
            r.key = Some(format_key(key));
            r.cache = Some(cache.to_owned());
            r
        }
    }
}
