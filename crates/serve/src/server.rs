//! The scheduling daemon.
//!
//! One listener thread accepts connections; each connection gets a
//! scoped handler thread that parses newline-delimited requests and
//! answers them. `schedule` requests resolve to a canonical
//! [`request_key`] and go through the [`OutcomeCache`]: hits answer
//! immediately, the single leader per key is pushed onto a **bounded
//! admission queue** (full queue → explicit `rejected` response, not
//! unbounded memory) and computed by a fixed worker pool through
//! [`Pipeline`] with a [`CancelToken`] deadline. The `shutdown` verb
//! drains gracefully: the listener stops accepting, every connection
//! finishes its buffered requests, the workers finish the queue, then
//! [`Server::run`] returns.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mcds_core::{
    request_key, CancelToken, McdsError, MetricsRegistry, Pipeline, SchedulerConfig, SchedulerKind,
};
use mcds_model::{Application, ArchParams, ClusterSchedule, Words};
use serde::{Deserialize, Serialize};

use crate::cache::{Begin, CachedResult, FlightGuard, OutcomeCache};
use crate::protocol::{format_key, Outcome, ScheduleRequest, ScheduleResponse, StatEntry};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads computing schedules.
    pub workers: usize,
    /// Admission queue capacity; a full queue rejects instead of
    /// buffering. `0` rejects every compute (useful for overload
    /// tests).
    pub queue_depth: usize,
    /// Poll interval for accept/read loops while idle, in
    /// milliseconds.
    pub poll_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .clamp(1, 8),
            queue_depth: 64,
            poll_ms: 25,
        }
    }
}

/// What one server lifetime handled, returned by [`Server::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Total request lines handled.
    pub requests: u64,
    /// `schedule` cache hits (including single-flight waiters).
    pub cache_hits: u64,
    /// `schedule` computations performed.
    pub cache_misses: u64,
    /// Overload rejections (admission queue full).
    pub rejected: u64,
    /// Runs abandoned on a deadline.
    pub deadline_misses: u64,
    /// Malformed or failed requests.
    pub errors: u64,
}

/// One admitted computation. The request key travels inside the
/// [`FlightGuard`].
struct Job {
    app: Application,
    sched: Option<ClusterSchedule>,
    arch: ArchParams,
    kind: SchedulerKind,
    cancel: CancelToken,
    guard: FlightGuard,
    tx: Sender<CachedResult>,
}

struct QueueState {
    jobs: VecDeque<Box<Job>>,
    closed: bool,
}

/// The bounded admission queue.
struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    depth: usize,
}

impl JobQueue {
    fn new(depth: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            depth,
        }
    }

    /// Admits the job, or hands it back when the queue is full or
    /// closed — the caller turns that into an explicit rejection.
    fn try_push(&self, job: Box<Job>) -> Result<(), Box<Job>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed || state.jobs.len() >= self.depth {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Next job, blocking; `None` once the queue is closed and empty.
    fn pop(&self) -> Option<Box<Job>> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }
}

/// Shared state of one server lifetime.
struct Ctx {
    cache: Arc<OutcomeCache>,
    metrics: Arc<MetricsRegistry>,
    queue: JobQueue,
    shutdown: AtomicBool,
    poll: Duration,
}

/// A bound, not-yet-running scheduling daemon.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServeConfig,
    metrics: Arc<MetricsRegistry>,
}

impl Server {
    /// Binds the listener (without accepting yet).
    ///
    /// # Errors
    ///
    /// [`McdsError::Io`] when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Server, McdsError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            config,
            metrics: Arc::new(MetricsRegistry::new()),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (shared with the pipelines it
    /// runs; also exposed over the wire via the `stats` verb).
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Serves until a `shutdown` request arrives, then drains: buffered
    /// requests on open connections are answered, queued jobs finish,
    /// and the final counters are returned.
    ///
    /// # Errors
    ///
    /// [`McdsError::Io`] on listener failures. Per-connection and
    /// per-request errors never abort the server.
    pub fn run(self) -> Result<ServeSummary, McdsError> {
        self.listener.set_nonblocking(true)?;
        let ctx = Ctx {
            cache: OutcomeCache::new(),
            metrics: Arc::clone(&self.metrics),
            queue: JobQueue::new(self.config.queue_depth),
            shutdown: AtomicBool::new(false),
            poll: Duration::from_millis(self.config.poll_ms.max(1)),
        };
        std::thread::scope(|s| -> Result<(), McdsError> {
            for _ in 0..self.config.workers.max(1) {
                s.spawn(|| worker_loop(&ctx));
            }
            let mut conns = Vec::new();
            while !ctx.shutdown.load(Ordering::Acquire) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let ctx = &ctx;
                        conns.push(s.spawn(move || handle_conn(stream, ctx)));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ctx.poll);
                    }
                    Err(e) => {
                        ctx.shutdown.store(true, Ordering::Release);
                        ctx.queue.close();
                        return Err(e.into());
                    }
                }
            }
            // Drain: connections first (they may still enqueue), then
            // the queue; the workers exit once it is closed and empty.
            for c in conns {
                let _ = c.join();
            }
            ctx.queue.close();
            Ok(())
        })?;
        let count = |name: &str| self.metrics.get(name).unwrap_or(0);
        Ok(ServeSummary {
            requests: count("serve.requests"),
            cache_hits: count("serve.cache.hits"),
            cache_misses: count("serve.cache.misses"),
            rejected: count("serve.rejected"),
            deadline_misses: count("serve.deadline_misses"),
            errors: count("serve.errors"),
        })
    }
}

/// One worker: pops admitted jobs and computes them through the
/// pipeline. Deterministic results (success or scheduling error) are
/// published to the cache; abandoned runs are not.
fn worker_loop(ctx: &Ctx) {
    while let Some(job) = ctx.queue.pop() {
        let app_name = job.app.name().to_owned();
        let mut pipeline = Pipeline::new(job.app)
            .arch(job.arch)
            .scheduler(job.kind)
            .metrics(Arc::clone(&ctx.metrics))
            .cancellation(job.cancel);
        if let Some(sched) = job.sched {
            pipeline = pipeline.schedule(sched);
        }
        let result = match pipeline.run() {
            Ok(run) => {
                let plan = run.plan();
                Ok(Outcome {
                    app: app_name,
                    scheduler: job.kind.name().to_owned(),
                    clusters: run.schedule().len() as u64,
                    rf: plan.rf(),
                    dt_avoided_words: plan.dt_avoided_per_iter().get(),
                    data_words: plan.total_data_words().get(),
                    context_words: plan.total_context_words(),
                    total_cycles: run.report().total().get(),
                })
            }
            Err(e) => Err(e),
        };
        match result {
            Err(McdsError::Cancelled(reason)) => {
                // Not a pure function of the request — never cached.
                ctx.metrics.incr("serve.deadline_misses");
                job.guard.abandon();
                let _ = job
                    .tx
                    .send(Arc::new(Err(format!("run abandoned: {reason}"))));
            }
            Ok(outcome) => {
                let shared = job.guard.fulfill(Ok(outcome));
                let _ = job.tx.send(shared);
            }
            Err(e) => {
                // Scheduling errors are deterministic → cacheable.
                let shared = job.guard.fulfill(Err(e.to_string()));
                let _ = job.tx.send(shared);
            }
        }
    }
}

/// One connection: reads request lines, answers each with one response
/// line. Any per-request failure produces an `error` response on this
/// connection only — the server and its other connections are
/// unaffected.
fn handle_conn(stream: TcpStream, ctx: &Ctx) {
    let _ = stream.set_read_timeout(Some(ctx.poll));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Answer every complete line already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            let response = handle_line(text, ctx);
            let Ok(mut out) = serde_json::to_string(&response) else {
                continue;
            };
            out.push('\n');
            if stream.write_all(out.as_bytes()).is_err() {
                return;
            }
        }
        // Between lines: honor a drain request, then wait for more
        // bytes.
        if ctx.shutdown.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return,
        }
    }
}

fn handle_line(line: &str, ctx: &Ctx) -> ScheduleResponse {
    let started = Instant::now();
    ctx.metrics.incr("serve.requests");
    let mut response = match serde_json::from_str::<ScheduleRequest>(line) {
        Ok(request) => dispatch(request, ctx),
        Err(e) => {
            ctx.metrics.incr("serve.errors");
            ScheduleResponse::error("unknown", format!("malformed request: {e}"))
        }
    };
    response.latency_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    ctx.metrics.observe("serve.latency_us", response.latency_us);
    response
}

fn dispatch(request: ScheduleRequest, ctx: &Ctx) -> ScheduleResponse {
    match request.verb.as_str() {
        "ping" => ScheduleResponse::ok("ping"),
        "stats" => ScheduleResponse::stats(
            ctx.metrics
                .snapshot()
                .into_iter()
                .map(|(name, value)| StatEntry { name, value })
                .collect(),
        ),
        "shutdown" => {
            ctx.shutdown.store(true, Ordering::Release);
            ScheduleResponse::ok("shutdown")
        }
        "schedule" => schedule(request, ctx),
        other => {
            ctx.metrics.incr("serve.errors");
            ScheduleResponse::error(
                other,
                format!("unknown verb `{other}` (expected schedule, ping, stats, shutdown)"),
            )
        }
    }
}

/// Resolves a `schedule` request into pipeline inputs.
fn resolve(
    request: ScheduleRequest,
) -> Result<
    (
        Application,
        Option<ClusterSchedule>,
        ArchParams,
        SchedulerKind,
    ),
    String,
> {
    let kind: SchedulerKind = request
        .scheduler
        .as_deref()
        .unwrap_or("cds")
        .parse()
        .map_err(|e: McdsError| e.to_string())?;
    let arch = match request.arch {
        Some(arch) => arch,
        None => ArchParams::m1()
            .to_builder()
            .fb_set_words(Words::kilo(request.fb_kw.unwrap_or(1).max(1)))
            .build(),
    };
    let (app, sched) = match (request.app, request.workload.as_deref()) {
        (Some(_), Some(_)) => return Err("`app` and `workload` are mutually exclusive".to_owned()),
        (None, None) => return Err("schedule needs `app` or `workload`".to_owned()),
        (Some(app), None) => {
            app.validate().map_err(|e| format!("invalid app: {e}"))?;
            (app, None)
        }
        (None, Some(name)) => {
            let iterations = request.iterations.unwrap_or(16);
            let (app, sched) = mcds_workloads::mix::by_name(name, iterations)
                .ok_or_else(|| format!("unknown workload `{name}` (and iterations must be > 0)"))?;
            (app, Some(sched))
        }
    };
    Ok((app, sched, arch, kind))
}

fn schedule(request: ScheduleRequest, ctx: &Ctx) -> ScheduleResponse {
    let deadline = request
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let (app, sched, arch, kind) = match resolve(request) {
        Ok(inputs) => inputs,
        Err(message) => {
            ctx.metrics.incr("serve.errors");
            return ScheduleResponse::error("schedule", message);
        }
    };
    let key = request_key(
        &app,
        sched.as_ref(),
        &arch,
        kind,
        &SchedulerConfig::default(),
    );
    match ctx.cache.begin(key, deadline) {
        Begin::Hit(result) => {
            ctx.metrics.incr("serve.cache.hits");
            cached_response(key, true, &result, ctx)
        }
        Begin::TimedOut => {
            ctx.metrics.incr("serve.deadline_misses");
            let mut r = ScheduleResponse::error("schedule", "run abandoned: deadline exceeded");
            r.key = Some(format_key(key));
            r
        }
        Begin::Lead(guard) => {
            let cancel = deadline.map_or_else(CancelToken::new, CancelToken::at);
            let (tx, rx) = std::sync::mpsc::channel();
            let job = Box::new(Job {
                app,
                sched,
                arch,
                kind,
                cancel,
                guard,
                tx,
            });
            if let Err(job) = ctx.queue.try_push(job) {
                ctx.metrics.incr("serve.rejected");
                job.guard.abandon();
                return ScheduleResponse::rejected(key);
            }
            match rx.recv() {
                Ok(result) => {
                    ctx.metrics.incr("serve.cache.misses");
                    cached_response(key, false, &result, ctx)
                }
                Err(_) => {
                    ctx.metrics.incr("serve.errors");
                    let mut r =
                        ScheduleResponse::error("schedule", "internal: worker dropped the request");
                    r.key = Some(format_key(key));
                    r
                }
            }
        }
    }
}

fn cached_response(key: u64, hit: bool, result: &CachedResult, ctx: &Ctx) -> ScheduleResponse {
    let cache = if hit { "hit" } else { "miss" };
    match result.as_ref() {
        Ok(outcome) => ScheduleResponse::outcome(key, hit, outcome.clone()),
        Err(message) => {
            ctx.metrics.incr("serve.errors");
            let mut r = ScheduleResponse::error("schedule", message.clone());
            r.key = Some(format_key(key));
            r.cache = Some(cache.to_owned());
            r
        }
    }
}
