//! The scheduling daemon — a readiness-driven reactor.
//!
//! One thread owns every socket: the listener and all connections are
//! nonblocking and multiplexed through `poll(2)` (see [`crate::sys`]).
//! Received bytes accumulate in per-connection [`FrameBuffer`]s and are
//! scanned zero-copy; decoded `schedule` requests resolve to a
//! canonical [`request_key`] and go through the sharded
//! [`OutcomeCache`]: hits are answered inline by splicing the
//! pre-serialized outcome into the connection's write buffer
//! ([`render_scheduled`]), the single leader per key is pushed onto a
//! **bounded admission queue** split into strict-priority QoS lanes
//! (full lane → typed `overloaded` rejection, not unbounded memory)
//! and computed by a fixed worker pool, and concurrent requesters of
//! an in-flight key park as *waiters* — no thread blocks — until the
//! leader's completion fans the shared result out to all of them
//! through the completion queue and the reactor's [`Waker`].
//!
//! Overload and abuse defenses (DESIGN.md §14): per-class lane
//! quotas, a dequeue-side queue-delay governor that sheds stale
//! lower-class work, deadline-expired jobs answered without running,
//! idle/write-stall connection reaping, and a per-connection buffer
//! cap. The reactor itself is crash-only: [`Server::run`] supervises
//! the tick loop under `catch_unwind`, so a panicking tick (or an
//! injected poll failure) recycles the incarnation while the
//! listener, caches, queue, and workers survive.
//!
//! Responses on a connection are delivered in request order (a
//! per-connection FIFO of pending slots), so pipelined clients can keep
//! many requests in flight and still match responses positionally. The
//! `shutdown` verb drains gracefully: the listener stops accepting,
//! buffered frames are answered, in-flight computations finish, then
//! [`Server::run`] returns.
//!
//! Identical request lines are memoized (bytes → resolved pipeline
//! inputs), so a hot key's steady state costs a hash lookup and a
//! buffer splice instead of a JSON parse and an application rebuild.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mcds_core::{
    arch_key, compose_key, structure_key, CancelToken, Counter, Fault, FaultPlan, Histogram,
    McdsError, MetricsRegistry, Pipeline, PipelineRun, SchedulerConfig, SchedulerKind, Seam,
};
use mcds_model::{Application, ArchParams, ClusterSchedule, Words};
use serde::{Deserialize, Serialize};

use crate::cache::{
    degraded_key, AnalysisLookup, CachedEntry, CachedResult, FlightGuard, Lookup, OutcomeCache,
    Token, DEFAULT_SHARDS,
};
use crate::protocol::{
    decode_request, render_scheduled, ErrorCode, FrameBuffer, FrameError, Outcome, QosClass,
    ScheduleSpec, Scheduled, ServeError, ServeRequest, ServeResponse, StatEntry, StatsReply,
    WireVersion,
};
use crate::store::{OutcomeStore, StoreConfig};
use crate::sys::{PollSet, Waker};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads computing schedules.
    pub workers: usize,
    /// Admission queue capacity; a full queue rejects instead of
    /// buffering. `0` rejects every compute (useful for overload
    /// tests).
    pub queue_depth: usize,
    /// Upper bound on one reactor tick's `poll` timeout in
    /// milliseconds (completions and I/O wake it earlier).
    pub poll_ms: u64,
    /// Largest accepted request frame in bytes; a connection that
    /// buffers more without a newline gets a typed error and is
    /// dropped instead of growing memory without bound.
    pub max_frame_bytes: usize,
    /// Outcome-cache shard count (rounded up to a power of two).
    pub shards: usize,
    /// Deterministic fault-injection plan for robustness testing
    /// (`None` in production: zero injected faults).
    pub faults: Option<Arc<FaultPlan>>,
    /// Enables the degraded fallback path: a full-CDS request whose
    /// run is cancelled (deadline, injected stage fault) is re-run
    /// through the cheaper within-cluster-only scheduler and served
    /// with `degraded: true` instead of failing.
    pub degrade: bool,
    /// Requests with a deadline below this many milliseconds skip the
    /// full CDS entirely and go straight to the degraded scheduler
    /// (`0` disables the upfront check).
    pub degrade_below_ms: u64,
    /// Per-class admission-lane quotas `[priority, standard, batch]`;
    /// a lane left at `0` inherits [`queue_depth`](Self::queue_depth).
    /// Lanes are drained in strict priority order, so a small batch
    /// quota bounds how much background traffic can queue behind
    /// latency-sensitive work.
    pub qos_quotas: [usize; 3],
    /// Queue sojourn (milliseconds) beyond which the dequeue-side
    /// governor sheds stale jobs from lanes *below* the one being
    /// served — a CoDel-style early drop under sustained overload.
    /// The priority lane is never shed. `0` disables shedding.
    pub shed_after_ms: u64,
    /// A connection with no *complete* frame for this many
    /// milliseconds (and nothing pending or unwritten) is reaped —
    /// the slow-loris/connect-and-idle defense. `0` disables.
    pub idle_timeout_ms: u64,
    /// A connection with unwritten output making no flush progress for
    /// this many milliseconds is dropped (stalled reader). `0`
    /// disables.
    pub write_stall_ms: u64,
    /// Cap on one connection's total buffered bytes (unread frames +
    /// unwritten responses). Exceeding it gets a typed `overloaded`
    /// error and the connection is closed after flushing — per-peer
    /// memory stays bounded under frame floods and stalled readers.
    /// `0` disables.
    pub max_conn_buffer_bytes: usize,
    /// WAL-backed durability ([`OutcomeStore`]): `Some` warm-starts
    /// the outcome cache from the store directory before accepting and
    /// journals every committed entry; `None` serves memory-only (the
    /// pre-durability behavior).
    pub store: Option<StoreConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .clamp(1, 8),
            queue_depth: 64,
            poll_ms: 25,
            max_frame_bytes: 256 * 1024,
            shards: DEFAULT_SHARDS,
            faults: None,
            degrade: true,
            degrade_below_ms: 0,
            qos_quotas: [0, 0, 0],
            shed_after_ms: 250,
            idle_timeout_ms: 60_000,
            write_stall_ms: 10_000,
            max_conn_buffer_bytes: 1024 * 1024,
            store: None,
        }
    }
}

/// What one server lifetime handled, returned by [`Server::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Total request lines handled.
    pub requests: u64,
    /// `schedule` cache hits (including single-flight waiters).
    pub cache_hits: u64,
    /// `schedule` computations performed.
    pub cache_misses: u64,
    /// Overload rejections (admission queue full).
    pub rejected: u64,
    /// Runs abandoned on a deadline.
    pub deadline_misses: u64,
    /// Malformed or failed requests.
    pub errors: u64,
    /// Worker threads recycled after a panic (supervised recovery).
    #[serde(default)]
    pub worker_restarts: u64,
    /// Requests served by the degraded fallback scheduler.
    #[serde(default)]
    pub degraded: u64,
    /// Faults the attached [`FaultPlan`] injected (all seams).
    #[serde(default)]
    pub faults_injected: u64,
    /// Un-versioned frames accepted through the legacy compat shim
    /// (deprecated — the shim lasts one release).
    #[serde(default)]
    pub legacy_frames: u64,
    /// Computations that reused a memoized analysis (arch-only
    /// variants of an already-analyzed workload structure).
    #[serde(default)]
    pub analysis_hits: u64,
    /// Computations that had to run the analysis front half.
    #[serde(default)]
    pub analysis_misses: u64,
    /// Reactor incarnations recycled by the supervisor after a panic
    /// or an injected poll failure (listener and caches survive).
    #[serde(default)]
    pub reactor_restarts: u64,
    /// Queued jobs shed by the queue-delay governor (all lanes).
    #[serde(default)]
    pub qos_shed: u64,
    /// Jobs whose deadline expired while queued, answered `deadline`
    /// without running.
    #[serde(default)]
    pub qos_expired: u64,
    /// Connections closed for exceeding the per-connection buffer cap.
    #[serde(default)]
    pub conn_overflows: u64,
    /// Connections reaped by the idle timeout.
    #[serde(default)]
    pub idle_reaped: u64,
    /// Connections dropped by the write-stall timeout.
    #[serde(default)]
    pub write_stalls: u64,
    /// Cache entries recovered from the durability store at startup
    /// (warm start; 0 when no store is attached).
    #[serde(default)]
    pub store_recovered: u64,
    /// Bytes recovery discarded after the last valid journal record.
    #[serde(default)]
    pub store_dropped: u64,
    /// Invalid frames that cut a recovery scan.
    #[serde(default)]
    pub store_corrupt: u64,
    /// Journal records appended this lifetime.
    #[serde(default)]
    pub store_appends: u64,
    /// Snapshot compactions performed this lifetime.
    #[serde(default)]
    pub store_compactions: u64,
    /// Clean-shutdown markers written (1 after a graceful drain).
    #[serde(default)]
    pub store_clean_shutdown: u64,
}

/// A `schedule` line resolved into pipeline inputs, shared between the
/// reactor's memo table and the worker that computes it.
struct Resolved {
    app: Application,
    sched: Option<ClusterSchedule>,
    arch: ArchParams,
    kind: SchedulerKind,
    /// Canonical content key of the *full-quality* request.
    key: u64,
    /// The workload-structure half of `key` — the analysis cache's
    /// address, shared by every arch/scheduler variant.
    structure_key: u64,
    deadline_ms: Option<u64>,
    /// Admission lane (not part of `key` — identical computations
    /// share one cache entry whatever class requested them).
    class: QosClass,
}

/// Memoized fate of an exact request line (bytes → outcome of the
/// parse/resolve stage, which is a pure function of the line).
#[derive(Clone)]
enum Memo {
    Good {
        resolved: Arc<Resolved>,
        legacy: bool,
    },
    Bad {
        code: ErrorCode,
        message: Arc<str>,
        legacy: bool,
    },
}

/// Parse-memo capacity; lines beyond this are simply not memoized.
const MEMO_CAP: usize = 16 * 1024;

/// One admitted computation.
struct Job {
    resolved: Arc<Resolved>,
    /// Scheduler actually run (`Ds` when routed degraded upfront).
    kind: SchedulerKind,
    /// `true` when the request was routed to the degraded scheduler
    /// upfront (tight deadline). Degraded jobs run clean and
    /// uncancellable — they exist to return *something*.
    degraded: bool,
    cancel: Option<CancelToken>,
    guard: FlightGuard,
    /// The leader's reply token (waiter tokens live in the cache).
    leader: Token,
    /// Lane this job was admitted on.
    class: QosClass,
    /// When the job entered its lane — drives the queue-delay governor
    /// and the dequeue-side deadline drop.
    enqueued: Instant,
}

struct QueueState {
    /// One FIFO per class, indexed by [`QosClass::index`] and drained
    /// in strict priority order.
    lanes: [VecDeque<Box<Job>>; 3],
    closed: bool,
}

/// The bounded admission queue, split into strict-priority QoS lanes.
struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    /// Per-lane capacity, indexed by [`QosClass::index`].
    quotas: [usize; 3],
    /// Sojourn beyond which lower lanes are shed at dequeue (`None`
    /// disables the governor).
    shed_after: Option<Duration>,
}

impl JobQueue {
    fn new(quotas: [usize; 3], shed_after: Option<Duration>) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                closed: false,
            }),
            available: Condvar::new(),
            quotas,
            shed_after,
        }
    }

    /// Admits the job onto its class lane, or hands it back (with
    /// whether the queue was closed rather than the lane full) — the
    /// caller turns that into a typed rejection.
    fn try_push(&self, job: Box<Job>) -> Result<(), (Box<Job>, bool)> {
        let lane = job.class.index();
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err((job, true));
        }
        if state.lanes[lane].len() >= self.quotas[lane] {
            return Err((job, false));
        }
        state.lanes[lane].push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Next job in strict priority order, blocking; `None` once the
    /// queue is closed and drained. When the popped job itself waited
    /// longer than `shed_after`, the queue is congested: stale heads
    /// of every lane *below* the popped one are shed (lowest class
    /// first) and returned for the caller to answer `overloaded` —
    /// the priority lane can never appear below another and so is
    /// never shed.
    // Shed jobs stay boxed: they were boxed on the lane and the caller
    // answers each one exactly as it would a popped job.
    #[allow(clippy::vec_box)]
    fn pop(&self) -> Option<(Box<Job>, Vec<Box<Job>>)> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            let lane = state.lanes.iter().position(|l| !l.is_empty());
            if let Some(lane) = lane {
                let job = state.lanes[lane].pop_front().expect("non-empty lane");
                let mut shed = Vec::new();
                if let Some(limit) = self.shed_after {
                    if job.enqueued.elapsed() > limit {
                        for lower in ((lane + 1)..state.lanes.len()).rev() {
                            while state.lanes[lower]
                                .front()
                                .is_some_and(|j| j.enqueued.elapsed() > limit)
                            {
                                shed.push(state.lanes[lower].pop_front().expect("checked front"));
                            }
                        }
                    }
                }
                return Some((job, shed));
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Current per-lane depths `[priority, standard, batch]`.
    fn depths(&self) -> [usize; 3] {
        let state = self.state.lock().expect("queue lock");
        [
            state.lanes[0].len(),
            state.lanes[1].len(),
            state.lanes[2].len(),
        ]
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }
}

/// How a worker's completion answers one parked request.
enum ReplyPayload {
    /// A published cache entry: render as hit/miss (successes splice
    /// the pre-serialized outcome; cached deterministic failures render
    /// as typed errors).
    Entry {
        key: u64,
        hit: bool,
        entry: CachedResult,
    },
    /// A transient, uncached failure.
    Error {
        code: ErrorCode,
        message: Arc<str>,
        key: u64,
        /// `true` for the leader of an abandoned run (it *was* the
        /// cache miss); waiters count neither hit nor miss.
        count_miss: bool,
        /// `true` when the failure counts under `serve.errors`
        /// (waiter-deadline expiries count only `deadline_misses`,
        /// matching the pre-reactor server).
        count_error: bool,
    },
}

struct Reply {
    token: Token,
    payload: ReplyPayload,
}

/// Pre-resolved metric handles — the hot path never re-hashes a
/// counter name.
struct Counters {
    requests: Counter,
    hits: Counter,
    misses: Counter,
    rejected: Counter,
    deadline_misses: Counter,
    errors: Counter,
    worker_restarts: Counter,
    degraded: Counter,
    legacy: Counter,
    analysis_hits: Counter,
    analysis_misses: Counter,
    latency: Histogram,
    /// Per-class admissions, indexed by [`QosClass::index`].
    qos_admitted: [Counter; 3],
    /// Per-class lane-full rejections.
    qos_rejected: [Counter; 3],
    /// Per-class queue-delay sheds.
    qos_shed: [Counter; 3],
    qos_expired: Counter,
    reactor_restarts: Counter,
    conn_overflows: Counter,
    idle_reaped: Counter,
    write_stalls: Counter,
    /// Total buffered bytes per connection, observed each service
    /// round — its `.max` is the per-peer memory high-water mark.
    buffer_bytes: Histogram,
}

impl Counters {
    fn new(metrics: &Arc<MetricsRegistry>) -> Counters {
        let per_class =
            |stem: &str| QosClass::ALL.map(|c| metrics.counter(&format!("serve.qos.{stem}.{c}")));
        Counters {
            requests: metrics.counter("serve.requests"),
            hits: metrics.counter("serve.cache.hits"),
            misses: metrics.counter("serve.cache.misses"),
            rejected: metrics.counter("serve.rejected"),
            deadline_misses: metrics.counter("serve.deadline_misses"),
            errors: metrics.counter("serve.errors"),
            worker_restarts: metrics.counter("serve.worker_restarts"),
            degraded: metrics.counter("serve.degraded"),
            legacy: metrics.counter("serve.legacy_frames"),
            analysis_hits: metrics.counter("serve.analysis.hits"),
            analysis_misses: metrics.counter("serve.analysis.misses"),
            latency: metrics.histogram("serve.latency_us"),
            qos_admitted: per_class("admitted"),
            qos_rejected: per_class("rejected"),
            qos_shed: per_class("shed"),
            qos_expired: metrics.counter("serve.qos.expired"),
            reactor_restarts: metrics.counter("serve.reactor_restarts"),
            conn_overflows: metrics.counter("serve.conn.overflow"),
            idle_reaped: metrics.counter("serve.conn.idle_reaped"),
            write_stalls: metrics.counter("serve.conn.write_stalls"),
            buffer_bytes: metrics.histogram("serve.conn.buffer_bytes"),
        }
    }
}

/// Shared state of one server lifetime (reactor + workers).
struct Ctx {
    cache: Arc<OutcomeCache>,
    /// WAL-backed durability; `None` = memory-only serving.
    store: Option<Arc<OutcomeStore>>,
    metrics: Arc<MetricsRegistry>,
    queue: JobQueue,
    /// Worker → reactor completion queue; pushing wakes the reactor.
    completions: Mutex<Vec<Reply>>,
    waker: Waker,
    faults: Option<Arc<FaultPlan>>,
    fault_delay: Duration,
    degrade: bool,
    degrade_below_ms: u64,
    counters: Counters,
    /// Jobs a worker has dequeued but not yet completed — a live
    /// gauge, read by the `stats` verb.
    inflight: AtomicU64,
}

impl Ctx {
    /// One fault decision at a serve-side seam; firing bumps the
    /// seam's `fault.*` counter.
    fn fault(&self, seam: Seam) -> Option<Fault> {
        let fault = self.faults.as_ref()?.decide(seam)?;
        self.metrics.incr(seam.metric());
        Some(fault)
    }

    /// Hands completed replies to the reactor and wakes it.
    fn complete(&self, replies: Vec<Reply>) {
        if replies.is_empty() {
            return;
        }
        self.completions
            .lock()
            .expect("completion lock")
            .extend(replies);
        self.waker.wake();
    }
}

/// A bound, not-yet-running scheduling daemon.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServeConfig,
    metrics: Arc<MetricsRegistry>,
}

impl Server {
    /// Binds the listener (without accepting yet).
    ///
    /// # Errors
    ///
    /// [`McdsError::Io`] when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Server, McdsError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            config,
            metrics: Arc::new(MetricsRegistry::new()),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (shared with the pipelines it
    /// runs; also exposed over the wire via the `stats` verb).
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Serves until a `shutdown` request arrives, then drains: buffered
    /// requests on open connections are answered, queued jobs finish,
    /// and the final counters are returned.
    ///
    /// # Errors
    ///
    /// [`McdsError::Io`] on listener/poll failures. Per-connection and
    /// per-request errors never abort the server.
    pub fn run(self) -> Result<ServeSummary, McdsError> {
        self.listener.set_nonblocking(true)?;
        let quotas = [0, 1, 2].map(|lane| {
            let quota = self.config.qos_quotas[lane];
            if quota == 0 {
                self.config.queue_depth
            } else {
                quota
            }
        });
        let shed_after = if self.config.shed_after_ms == 0 {
            None
        } else {
            Some(Duration::from_millis(self.config.shed_after_ms))
        };
        // Warm start: rebuild the cache from the durability store
        // (snapshot + journal) before the first connection is
        // accepted, so recovered keys serve as hits with zero pipeline
        // re-runs. A store open failure is fatal — the operator asked
        // for durability; running without it silently would be worse.
        let cache = OutcomeCache::with_shards(self.config.shards);
        let store = match &self.config.store {
            Some(config) => Some(OutcomeStore::open(
                config,
                &cache,
                &self.metrics,
                self.config.faults.clone(),
            )?),
            None => None,
        };
        let ctx = Ctx {
            cache: Arc::clone(&cache),
            store: store.clone(),
            metrics: Arc::clone(&self.metrics),
            queue: JobQueue::new(quotas, shed_after),
            completions: Mutex::new(Vec::new()),
            waker: Waker::new()?,
            fault_delay: Duration::from_micros(
                self.config
                    .faults
                    .as_ref()
                    .map_or(0, |f| f.config().delay_us),
            ),
            faults: self.config.faults.clone(),
            degrade: self.config.degrade,
            degrade_below_ms: self.config.degrade_below_ms,
            counters: Counters::new(&self.metrics),
            inflight: AtomicU64::new(0),
        };
        std::thread::scope(|s| -> Result<(), McdsError> {
            for _ in 0..self.config.workers.max(1) {
                s.spawn(|| worker_loop(&ctx));
            }
            // Crash-only supervision: a reactor incarnation is
            // disposable — the listener, the outcome/analysis caches,
            // the admission queue, and the worker pool all live out
            // here and survive a tick panic (or an injected poll
            // failure) intact. Connections and the parse memo die with
            // the incarnation; clients see a transport error and
            // retry, the memo rebuilds itself.
            let result = loop {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    Reactor::new(&ctx, &self.listener, &self.config).run()
                }));
                match outcome {
                    Ok(Ok(())) => break Ok(()),
                    Ok(Err(McdsError::Faulted(_))) | Err(_) => {
                        ctx.counters.reactor_restarts.incr();
                    }
                    Ok(Err(e)) => break Err(e),
                }
            };
            ctx.queue.close();
            result
        })?;
        // Graceful drain finished (workers joined, listener closed):
        // flush everything into a clean snapshot and mark the journal
        // so the next recovery can prove nothing is torn.
        if let Some(store) = &store {
            store.clean_shutdown(&cache);
        }
        let count = |name: &str| self.metrics.get(name).unwrap_or(0);
        Ok(ServeSummary {
            requests: count("serve.requests"),
            cache_hits: count("serve.cache.hits"),
            cache_misses: count("serve.cache.misses"),
            rejected: count("serve.rejected"),
            deadline_misses: count("serve.deadline_misses"),
            errors: count("serve.errors"),
            worker_restarts: count("serve.worker_restarts"),
            degraded: count("serve.degraded"),
            faults_injected: self
                .config
                .faults
                .as_ref()
                .map_or(0, |f| f.snapshot().total_fired()),
            legacy_frames: count("serve.legacy_frames"),
            analysis_hits: count("serve.analysis.hits"),
            analysis_misses: count("serve.analysis.misses"),
            reactor_restarts: count("serve.reactor_restarts"),
            qos_shed: QosClass::ALL
                .iter()
                .map(|c| count(&format!("serve.qos.shed.{c}")))
                .sum(),
            qos_expired: count("serve.qos.expired"),
            conn_overflows: count("serve.conn.overflow"),
            idle_reaped: count("serve.conn.idle_reaped"),
            write_stalls: count("serve.conn.write_stalls"),
            store_recovered: count("serve.store.recovered"),
            store_dropped: count("serve.store.dropped"),
            store_corrupt: count("serve.store.corrupt"),
            store_appends: count("serve.store.appends"),
            store_compactions: count("serve.store.compactions"),
            store_clean_shutdown: count("serve.store.clean_shutdown"),
        })
    }
}

/// Packs a reply token from a connection generation and request slot.
fn pack_token(gen: u32, slot: u32) -> Token {
    (u64::from(gen) << 32) | u64::from(slot)
}

fn token_gen(token: Token) -> u32 {
    (token >> 32) as u32
}

fn token_slot(token: Token) -> u32 {
    token as u32
}

fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(unix)]
fn fd_of<T: std::os::fd::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn fd_of<T>(_t: &T) -> i32 {
    0
}

/// One parked response position in a connection's FIFO. Responses are
/// written strictly in request order, so a pipelined client can match
/// them positionally.
struct PendingSlot {
    slot: u32,
    started: Instant,
    state: SlotState,
}

enum SlotState {
    /// The request is computing (leader) or parked on another flight
    /// (waiter).
    Waiting,
    /// The rendered response, ready to pump once it reaches the front.
    Done(Vec<u8>),
}

/// One nonblocking connection owned by the reactor.
struct Conn {
    stream: TcpStream,
    gen: u32,
    frames: FrameBuffer,
    /// Rendered-but-unwritten response bytes.
    out: Vec<u8>,
    out_pos: usize,
    pending: VecDeque<PendingSlot>,
    next_slot: u32,
    /// Remaining chunks of an injected slow-loris write, dribbled out
    /// by timer.
    dribble: VecDeque<Vec<u8>>,
    /// No more bytes will be read (EOF, drain, or a fatal frame
    /// error).
    read_done: bool,
    /// Close once `out` and `dribble` are fully written.
    close_after_flush: bool,
    /// Close immediately; discard anything unwritten.
    broken: bool,
    /// Last *complete* frame processed (connect time until the
    /// first) — a peer dribbling bytes without ever finishing a frame
    /// still reads as idle, which is the slow-loris defense.
    last_frame: Instant,
    /// Last time `flush` moved bytes into the socket; a stalled
    /// reader stops making progress here.
    last_write_progress: Instant,
}

impl Conn {
    /// Everything this peer is making the server hold: unparsed frame
    /// bytes, parked/rendered responses, and the unwritten tail.
    fn buffered_bytes(&self) -> usize {
        let pending: usize = self
            .pending
            .iter()
            .map(|s| match &s.state {
                SlotState::Done(bytes) => bytes.len(),
                SlotState::Waiting => 0,
            })
            .sum();
        let dribble: usize = self.dribble.iter().map(Vec::len).sum();
        (self.out.len() - self.out_pos) + pending + dribble + self.frames.len()
    }
}

enum TimerEvent {
    /// A parked waiter's own deadline: deregister it from the flight
    /// and answer a typed retryable `deadline` error.
    WaiterDeadline { token: Token, key: u64 },
    /// Next chunk of an injected slow-loris write.
    Dribble { gen: u32 },
}

struct TimerEntry {
    at: Instant,
    seq: u64,
    event: TimerEvent,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The single-threaded reactor: owns every socket, the timer heap, and
/// the parse memo; workers only ever touch the cache, the queue, and
/// the completion queue.
struct Reactor<'a> {
    ctx: &'a Ctx,
    listener: &'a TcpListener,
    poll_ms: u64,
    max_frame_bytes: usize,
    idle_timeout: Duration,
    write_stall: Duration,
    max_conn_buffer: usize,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    by_gen: HashMap<u32, usize>,
    next_gen: u32,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    draining: bool,
    drained_buffered: bool,
    /// Set by an injected [`Seam::PollError`]: the tick loop bails out
    /// with [`McdsError::Faulted`] at the next loop head and the
    /// supervisor starts a fresh incarnation.
    poll_failed: bool,
    last_sweep: Instant,
    memo: HashMap<Box<[u8]>, Memo>,
    poll: PollSet,
    chunk: Vec<u8>,
}

impl<'a> Reactor<'a> {
    fn new(ctx: &'a Ctx, listener: &'a TcpListener, config: &ServeConfig) -> Reactor<'a> {
        Reactor {
            ctx,
            listener,
            poll_ms: config.poll_ms.max(1),
            max_frame_bytes: config.max_frame_bytes,
            idle_timeout: Duration::from_millis(config.idle_timeout_ms),
            write_stall: Duration::from_millis(config.write_stall_ms),
            max_conn_buffer: config.max_conn_buffer_bytes,
            conns: Vec::new(),
            free: Vec::new(),
            by_gen: HashMap::new(),
            next_gen: 1,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            draining: false,
            drained_buffered: false,
            poll_failed: false,
            last_sweep: Instant::now(),
            memo: HashMap::new(),
            poll: PollSet::new(),
            chunk: vec![0u8; 64 * 1024],
        }
    }

    fn run(&mut self) -> Result<(), McdsError> {
        loop {
            if self.poll_failed {
                return Err(McdsError::Faulted("injected poll failure".to_owned()));
            }
            let replies =
                std::mem::take(&mut *self.ctx.completions.lock().expect("completion lock"));
            for reply in replies {
                self.deliver(reply);
            }
            for (key, waiters) in self.ctx.cache.take_orphans() {
                for token in waiters {
                    self.deliver(Reply {
                        token,
                        payload: ReplyPayload::Error {
                            code: ErrorCode::Faulted,
                            message: Arc::from("worker died; the request is retryable"),
                            key,
                            count_miss: false,
                            count_error: true,
                        },
                    });
                }
            }
            self.fire_due_timers();
            self.reap_slow_peers();
            if self.draining && !self.drained_buffered {
                self.drained_buffered = true;
                for idx in 0..self.conns.len() {
                    if let Some(mut conn) = self.conns[idx].take() {
                        self.drain_frames(&mut conn);
                        conn.read_done = true;
                        self.finish(idx, conn);
                    }
                }
            }
            if self.draining && self.by_gen.is_empty() {
                return Ok(());
            }
            let (listener_idx, waker_idx, conn_poll) = self.build_poll_set();
            let timeout = self.poll_timeout();
            self.poll.poll(timeout)?;
            self.ctx.waker.drain();
            let _ = waker_idx;
            if listener_idx.is_some_and(|idx| self.poll.readable(idx)) {
                self.accept_all()?;
            }
            for (idx, pidx) in conn_poll {
                if self.poll.readable(pidx) {
                    self.service_readable(idx);
                } else if self.poll.writable(pidx) {
                    if let Some(conn) = self.conns[idx].take() {
                        self.finish(idx, conn);
                    }
                }
            }
        }
    }

    /// Registers every live descriptor for the next `poll`; returns the
    /// poll indices of the listener, the waker, and each interested
    /// connection.
    #[allow(clippy::type_complexity)]
    fn build_poll_set(&mut self) -> (Option<usize>, Option<usize>, Vec<(usize, usize)>) {
        self.poll.clear();
        let listener_idx = if self.draining {
            None
        } else {
            Some(self.poll.push(fd_of(self.listener), true, false))
        };
        let waker_fd = self.ctx.waker.fd();
        let waker_idx = if waker_fd >= 0 {
            Some(self.poll.push(waker_fd, true, false))
        } else {
            None
        };
        let mut conn_poll = Vec::new();
        for (i, slot) in self.conns.iter().enumerate() {
            if let Some(conn) = slot {
                let want_read = !conn.read_done;
                let want_write = conn.out_pos < conn.out.len();
                if want_read || want_write {
                    conn_poll.push((
                        i,
                        self.poll.push(fd_of(&conn.stream), want_read, want_write),
                    ));
                }
            }
        }
        (listener_idx, waker_idx, conn_poll)
    }

    /// Poll timeout in ms: the configured tick, shortened to the next
    /// due timer.
    fn poll_timeout(&self) -> i32 {
        let mut timeout = i64::try_from(self.poll_ms).unwrap_or(i64::MAX);
        if let Some(Reverse(next)) = self.timers.peek() {
            let until = next
                .at
                .saturating_duration_since(Instant::now())
                .as_millis();
            timeout = timeout.min(i64::try_from(until).unwrap_or(i64::MAX));
        }
        i32::try_from(timeout.clamp(0, 60_000)).unwrap_or(25)
    }

    /// Drops connections that stopped holding up their end: a peer
    /// with unwritten output and no flush progress for `write_stall`
    /// (stalled reader), or one that completed no frame for
    /// `idle_timeout` while owing the server nothing (connect-and-idle
    /// and slow-loris writers alike — `last_frame` only advances on
    /// *complete* frames). Runs at most every 100ms; the reactor loop
    /// already ticks at least every `poll_ms`.
    fn reap_slow_peers(&mut self) {
        if self.idle_timeout.is_zero() && self.write_stall.is_zero() {
            return;
        }
        let now = Instant::now();
        if now.duration_since(self.last_sweep) < Duration::from_millis(100) {
            return;
        }
        self.last_sweep = now;
        for idx in 0..self.conns.len() {
            let stalled;
            match &self.conns[idx] {
                Some(conn) => {
                    if !self.write_stall.is_zero()
                        && conn.out_pos < conn.out.len()
                        && now.duration_since(conn.last_write_progress) > self.write_stall
                    {
                        stalled = true;
                    } else if !self.idle_timeout.is_zero()
                        && conn.pending.is_empty()
                        && conn.dribble.is_empty()
                        && conn.out_pos >= conn.out.len()
                        && now.duration_since(conn.last_frame) > self.idle_timeout
                    {
                        stalled = false;
                    } else {
                        continue;
                    }
                }
                None => continue,
            }
            let Some(mut conn) = self.conns[idx].take() else {
                continue;
            };
            if stalled {
                self.ctx.counters.write_stalls.incr();
            } else {
                self.ctx.counters.idle_reaped.incr();
            }
            conn.broken = true;
            self.finish(idx, conn);
        }
    }

    fn accept_all(&mut self) -> Result<(), McdsError> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Injected accept-path failures, decided once per
                    // accepted socket (deterministic under chaos
                    // lockstep): the peer's connect already succeeded
                    // in the kernel, so dropping the stream here looks
                    // to the client like an immediate server-side
                    // close — exactly what a transient accept error or
                    // fd exhaustion produces.
                    if self.ctx.fault(Seam::AcceptFail).is_some()
                        || self.ctx.fault(Seam::FdExhausted).is_some()
                    {
                        drop(stream);
                        continue;
                    }
                    stream.set_nonblocking(true)?;
                    let _ = stream.set_nodelay(true);
                    self.add_conn(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        let gen = self.next_gen;
        self.next_gen = self.next_gen.wrapping_add(1);
        let conn = Conn {
            stream,
            gen,
            frames: FrameBuffer::new(self.max_frame_bytes),
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            next_slot: 0,
            dribble: VecDeque::new(),
            read_done: false,
            close_after_flush: false,
            broken: false,
            last_frame: Instant::now(),
            last_write_progress: Instant::now(),
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.conns[idx] = Some(conn);
                idx
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        self.by_gen.insert(gen, idx);
    }

    fn service_readable(&mut self, idx: usize) {
        let Some(mut conn) = self.conns[idx].take() else {
            return;
        };
        loop {
            // Backpressure, not unbounded slurp: once this peer has a
            // buffer cap's worth of unanswered input, stop reading and
            // leave the rest in the kernel buffer — poll re-arms on the
            // leftovers, and `enforce_buffer_cap` disconnects the peer
            // if it is flooding rather than merely bursty.
            if self.max_conn_buffer > 0 && conn.frames.len() >= self.max_conn_buffer {
                break;
            }
            match conn.stream.read(&mut self.chunk) {
                Ok(0) => {
                    conn.read_done = true;
                    break;
                }
                Ok(n) => conn.frames.extend(&self.chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.broken = true;
                    break;
                }
            }
        }
        self.drain_frames(&mut conn);
        self.finish(idx, conn);
    }

    /// Answers every complete frame buffered on `conn`.
    fn drain_frames(&mut self, conn: &mut Conn) {
        if conn.broken || conn.close_after_flush {
            return;
        }
        let mut frames = std::mem::replace(&mut conn.frames, FrameBuffer::new(1));
        loop {
            match frames.next_frame() {
                Ok(Some(line)) => {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    conn.last_frame = Instant::now();
                    self.process_line(conn, line);
                    if conn.broken || conn.close_after_flush {
                        break;
                    }
                    // Small requests can render large responses: stop
                    // answering the moment the cap is crossed so the
                    // overshoot is bounded by one response, and let
                    // `enforce_buffer_cap` deliver the verdict.
                    if self.max_conn_buffer > 0 && conn.buffered_bytes() > self.max_conn_buffer {
                        break;
                    }
                }
                Ok(None) => break,
                Err(FrameError::InvalidUtf8) => {
                    // The bad frame was consumed — answer typed and
                    // keep serving this connection.
                    self.ctx.counters.errors.incr();
                    let failed = ServeResponse::Failed(ServeError {
                        code: ErrorCode::BadRequest,
                        message: FrameError::InvalidUtf8.to_string(),
                        key: None,
                        verb: "frame".to_owned(),
                        latency_us: 0,
                    });
                    self.queue_response(conn, &failed);
                }
                Err(err @ FrameError::Oversized { .. }) => {
                    // The frame boundary is lost: answer typed, then
                    // close instead of buffering forever.
                    self.ctx.counters.errors.incr();
                    let failed = ServeResponse::Failed(ServeError {
                        code: ErrorCode::Oversized,
                        message: err.to_string(),
                        key: None,
                        verb: "frame".to_owned(),
                        latency_us: 0,
                    });
                    self.queue_response(conn, &failed);
                    conn.read_done = true;
                    conn.close_after_flush = true;
                    break;
                }
            }
        }
        conn.frames = frames;
    }

    fn memo_insert(&mut self, line: &str, memo: Memo) {
        if self.memo.len() < MEMO_CAP {
            self.memo.insert(line.as_bytes().into(), memo);
        }
    }

    fn process_line(&mut self, conn: &mut Conn, line: &str) {
        // An injected pre-processing disconnect drops the request (and
        // the connection) before it is even counted — the client must
        // retry on a fresh connection, as with a real peer reset.
        if matches!(self.ctx.fault(Seam::ServeRead), Some(Fault::Disconnect)) {
            conn.broken = true;
            return;
        }
        // Reactor-era seams, decided once per processed frame (never
        // per poll tick — tick counts are wall-clock dependent and
        // would break chaos replay). Both take down the incarnation:
        // a tick panic unwinds into the supervisor's `catch_unwind`,
        // an injected poll failure flags the loop to bail with
        // `Faulted` at the next head. No lock is held at this point,
        // so the unwind cannot poison shared state.
        if matches!(self.ctx.fault(Seam::TickPanic), Some(Fault::TickPanic)) {
            panic!("injected reactor tick panic");
        }
        if matches!(self.ctx.fault(Seam::PollError), Some(Fault::PollFail)) {
            self.poll_failed = true;
            conn.broken = true;
            return;
        }
        let started = Instant::now();
        self.ctx.counters.requests.incr();
        if let Some(memo) = self.memo.get(line.as_bytes()).cloned() {
            match memo {
                Memo::Good { resolved, legacy } => {
                    if legacy {
                        self.ctx.counters.legacy.incr();
                    }
                    self.handle_schedule(conn, started, &resolved);
                }
                Memo::Bad {
                    code,
                    message,
                    legacy,
                } => {
                    if legacy {
                        self.ctx.counters.legacy.incr();
                    }
                    self.ctx.counters.errors.incr();
                    self.respond_failed(conn, started, code, &message, "schedule", None);
                }
            }
            return;
        }
        let (request, version) = match decode_request(line) {
            Ok(decoded) => decoded,
            Err(err) => {
                self.ctx.counters.errors.incr();
                let code = err.code();
                let message = err.to_string();
                self.memo_insert(
                    line,
                    Memo::Bad {
                        code,
                        message: Arc::from(message.as_str()),
                        legacy: false,
                    },
                );
                self.respond_failed(conn, started, code, &message, "unknown", None);
                return;
            }
        };
        let legacy = version == WireVersion::Legacy;
        if legacy {
            self.ctx.counters.legacy.incr();
        }
        match request {
            ServeRequest::Ping => {
                let latency_us = self.observed_latency(started);
                self.queue_response(conn, &ServeResponse::Pong { latency_us });
            }
            ServeRequest::Stats => {
                let mut entries: Vec<StatEntry> = self
                    .ctx
                    .metrics
                    .snapshot()
                    .into_iter()
                    .map(|(name, value)| StatEntry { name, value })
                    .collect();
                // Live gauges (queue occupancy and in-flight work)
                // have no counter representation — compute them at
                // snapshot time and keep the reply sorted by name.
                let depths = self.ctx.queue.depths();
                entries.push(StatEntry {
                    name: "serve.queue.depth".to_owned(),
                    value: depths.iter().map(|&d| d as u64).sum(),
                });
                for (class, depth) in QosClass::ALL.iter().zip(depths) {
                    entries.push(StatEntry {
                        name: format!("serve.queue.depth.{class}"),
                        value: depth as u64,
                    });
                }
                entries.push(StatEntry {
                    name: "serve.inflight".to_owned(),
                    value: self.ctx.inflight.load(Ordering::Relaxed),
                });
                // Durability gauges: journal growth and snapshot epoch
                // are live store state, not counters. (Recovery totals
                // like `serve.store.recovered` already ride in the
                // registry snapshot above.)
                if let Some(store) = &self.ctx.store {
                    entries.push(StatEntry {
                        name: "serve.store.journal_bytes".to_owned(),
                        value: store.journal_bytes(),
                    });
                    entries.push(StatEntry {
                        name: "serve.store.snapshot_epoch".to_owned(),
                        value: store.snapshot_epoch(),
                    });
                }
                entries.sort_by(|a, b| a.name.cmp(&b.name));
                let latency_us = self.observed_latency(started);
                self.queue_response(
                    conn,
                    &ServeResponse::Stats(StatsReply {
                        entries,
                        latency_us,
                    }),
                );
            }
            ServeRequest::Shutdown => {
                self.draining = true;
                let latency_us = self.observed_latency(started);
                self.queue_response(conn, &ServeResponse::ShuttingDown { latency_us });
            }
            ServeRequest::Schedule(spec) => match resolve(spec) {
                Ok(resolved) => {
                    let resolved = Arc::new(resolved);
                    self.memo_insert(
                        line,
                        Memo::Good {
                            resolved: Arc::clone(&resolved),
                            legacy,
                        },
                    );
                    self.handle_schedule(conn, started, &resolved);
                }
                Err(message) => {
                    self.ctx.counters.errors.incr();
                    self.memo_insert(
                        line,
                        Memo::Bad {
                            code: ErrorCode::BadRequest,
                            message: Arc::from(message.as_str()),
                            legacy,
                        },
                    );
                    self.respond_failed(
                        conn,
                        started,
                        ErrorCode::BadRequest,
                        &message,
                        "schedule",
                        None,
                    );
                }
            },
        }
    }

    fn handle_schedule(&mut self, conn: &mut Conn, started: Instant, resolved: &Arc<Resolved>) {
        let ctx = self.ctx;
        let deadline = resolved
            .deadline_ms
            .map(|ms| started + Duration::from_millis(ms));
        // Upfront degrade: when the deadline is too tight for the full
        // CDS to be worth attempting, route the request straight to the
        // cheaper within-cluster-only scheduler (its own cache key, no
        // cancellation — it exists to succeed).
        let degraded_upfront = ctx.degrade
            && ctx.degrade_below_ms > 0
            && resolved.kind == SchedulerKind::Cds
            && resolved
                .deadline_ms
                .is_some_and(|ms| ms < ctx.degrade_below_ms);
        let entry_key = if degraded_upfront {
            degraded_key(resolved.key)
        } else {
            resolved.key
        };
        // Warm fast path: a published entry answers inline without
        // touching single-flight bookkeeping.
        if let Some(entry) = ctx.cache.get(entry_key) {
            ctx.counters.hits.incr();
            self.respond_entry(conn, started, entry_key, true, &entry);
            return;
        }
        let token = pack_token(conn.gen, conn.next_slot);
        match ctx.cache.lookup(entry_key, token) {
            Lookup::Hit(entry) => {
                ctx.counters.hits.incr();
                self.respond_entry(conn, started, entry_key, true, &entry);
            }
            Lookup::Wait => {
                push_waiting(conn, started);
                if let Some(at) = deadline {
                    self.schedule_timer(
                        at,
                        TimerEvent::WaiterDeadline {
                            token,
                            key: entry_key,
                        },
                    );
                }
            }
            Lookup::Lead(guard) => {
                let cancel = if degraded_upfront {
                    None
                } else {
                    Some(deadline.map_or_else(CancelToken::new, CancelToken::at))
                };
                let class = resolved.class;
                let job = Box::new(Job {
                    resolved: Arc::clone(resolved),
                    kind: if degraded_upfront {
                        SchedulerKind::Ds
                    } else {
                        resolved.kind
                    },
                    degraded: degraded_upfront,
                    cancel,
                    guard,
                    leader: token,
                    class,
                    enqueued: started,
                });
                match ctx.queue.try_push(job) {
                    Ok(()) => {
                        ctx.counters.qos_admitted[class.index()].incr();
                        push_waiting(conn, started);
                    }
                    Err((job, closed)) => {
                        let Job { guard, .. } = *job;
                        let _ = guard.abandon();
                        if closed {
                            ctx.counters.errors.incr();
                            self.respond_failed(
                                conn,
                                started,
                                ErrorCode::Shutdown,
                                "server is draining; no new computations admitted",
                                "schedule",
                                Some(entry_key),
                            );
                        } else {
                            ctx.counters.rejected.incr();
                            ctx.counters.qos_rejected[class.index()].incr();
                            self.respond_failed(
                                conn,
                                started,
                                ErrorCode::Overloaded,
                                "overloaded: admission lane full",
                                "schedule",
                                Some(entry_key),
                            );
                        }
                    }
                }
            }
        }
    }

    /// Observes the latency histogram and returns the value.
    fn observed_latency(&self, started: Instant) -> u64 {
        let latency = elapsed_us(started);
        self.ctx.counters.latency.observe(latency);
        latency
    }

    fn respond_failed(
        &mut self,
        conn: &mut Conn,
        started: Instant,
        code: ErrorCode,
        message: &str,
        verb: &str,
        key: Option<u64>,
    ) {
        let latency_us = self.observed_latency(started);
        let failed = ServeResponse::Failed(ServeError {
            code,
            message: message.to_owned(),
            key,
            verb: verb.to_owned(),
            latency_us,
        });
        self.queue_response(conn, &failed);
    }

    /// Renders a cache entry (hit or leader-completed miss) for `conn`.
    fn respond_entry(
        &mut self,
        conn: &mut Conn,
        started: Instant,
        key: u64,
        hit: bool,
        entry: &CachedResult,
    ) {
        let latency_us = self.observed_latency(started);
        self.render_entry(conn, key, hit, entry, latency_us);
    }

    fn render_entry(
        &mut self,
        conn: &mut Conn,
        key: u64,
        hit: bool,
        entry: &CachedResult,
        latency_us: u64,
    ) {
        match (&entry.result, entry.outcome_json()) {
            (Ok(_), Some(json)) => {
                if self.ctx.faults.is_none() && conn.pending.is_empty() && conn.dribble.is_empty() {
                    // Hot path: splice straight into the write buffer —
                    // no intermediate allocation, no slot bookkeeping.
                    render_scheduled(&mut conn.out, key, hit, json.as_bytes(), latency_us);
                } else {
                    let mut bytes = Vec::with_capacity(json.len() + 160);
                    render_scheduled(&mut bytes, key, hit, json.as_bytes(), latency_us);
                    self.queue_bytes(conn, bytes);
                }
            }
            (Ok(outcome), None) => {
                // Unreachable in practice (successes pre-serialize),
                // but render correctly if an entry lacks its JSON.
                let response = ServeResponse::Scheduled(Scheduled {
                    key,
                    cache_hit: hit,
                    outcome: outcome.clone(),
                    latency_us,
                });
                self.queue_response(conn, &response);
            }
            (Err(err), _) => {
                self.ctx.counters.errors.incr();
                let failed = ServeResponse::Failed(ServeError {
                    code: err.code,
                    message: err.message.clone(),
                    key: Some(key),
                    verb: "schedule".to_owned(),
                    latency_us,
                });
                self.queue_response(conn, &failed);
            }
        }
    }

    fn queue_response(&mut self, conn: &mut Conn, response: &ServeResponse) {
        let mut bytes = response.encode().into_bytes();
        bytes.push(b'\n');
        self.queue_bytes(conn, bytes);
    }

    /// Appends a rendered response respecting the per-connection FIFO
    /// (and write-fault machinery when a fault plan is attached).
    fn queue_bytes(&mut self, conn: &mut Conn, bytes: Vec<u8>) {
        if self.ctx.faults.is_none() && conn.pending.is_empty() && conn.dribble.is_empty() {
            conn.out.extend_from_slice(&bytes);
            return;
        }
        conn.pending.push_back(PendingSlot {
            slot: conn.next_slot,
            started: Instant::now(),
            state: SlotState::Done(bytes),
        });
        conn.next_slot = conn.next_slot.wrapping_add(1);
        self.pump(conn);
    }

    /// Moves consecutive completed responses from the FIFO into the
    /// write buffer, applying per-response write faults in response
    /// order.
    fn pump(&mut self, conn: &mut Conn) {
        if !conn.dribble.is_empty() || conn.close_after_flush {
            return;
        }
        while matches!(
            conn.pending.front(),
            Some(PendingSlot {
                state: SlotState::Done(_),
                ..
            })
        ) {
            let slot = conn.pending.pop_front().expect("checked front");
            let SlotState::Done(bytes) = slot.state else {
                unreachable!("matched Done above");
            };
            match self.ctx.fault(Seam::ServeWrite) {
                Some(Fault::TruncateWrite) => {
                    // Mid-frame disconnect: half the frame, then the
                    // connection closes — the client sees a short read
                    // with no terminating newline.
                    conn.out.extend_from_slice(&bytes[..bytes.len() / 2]);
                    conn.pending.clear();
                    conn.dribble.clear();
                    conn.read_done = true;
                    conn.close_after_flush = true;
                    return;
                }
                Some(Fault::SlowWrite) => {
                    // Slow-loris writer: dribble the frame out in eight
                    // timer-delayed chunks. The frame still completes,
                    // so a patient client succeeds without a retry.
                    let piece = bytes.len().div_ceil(8).max(1);
                    for chunk in bytes.chunks(piece) {
                        conn.dribble.push_back(chunk.to_vec());
                    }
                    let at = Instant::now() + self.ctx.fault_delay;
                    self.schedule_timer(at, TimerEvent::Dribble { gen: conn.gen });
                    return;
                }
                Some(_) | None => conn.out.extend_from_slice(&bytes),
            }
        }
    }

    fn schedule_timer(&mut self, at: Instant, event: TimerEvent) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.push(Reverse(TimerEntry { at, seq, event }));
    }

    fn fire_due_timers(&mut self) {
        let now = Instant::now();
        while self
            .timers
            .peek()
            .is_some_and(|Reverse(next)| next.at <= now)
        {
            let Reverse(entry) = self.timers.pop().expect("peeked");
            match entry.event {
                TimerEvent::WaiterDeadline { token, key } => {
                    if self.ctx.cache.cancel_wait(key, token) {
                        self.ctx.counters.deadline_misses.incr();
                        self.deliver(Reply {
                            token,
                            payload: ReplyPayload::Error {
                                code: ErrorCode::Deadline,
                                message: Arc::from("run abandoned: deadline exceeded"),
                                key,
                                count_miss: false,
                                count_error: false,
                            },
                        });
                    }
                }
                TimerEvent::Dribble { gen } => {
                    let Some(&idx) = self.by_gen.get(&gen) else {
                        continue;
                    };
                    let Some(mut conn) = self.conns[idx].take() else {
                        continue;
                    };
                    if let Some(chunk) = conn.dribble.pop_front() {
                        conn.out.extend_from_slice(&chunk);
                    }
                    if conn.dribble.is_empty() {
                        self.pump(&mut conn);
                    } else {
                        let at = Instant::now() + self.ctx.fault_delay;
                        self.schedule_timer(at, TimerEvent::Dribble { gen });
                    }
                    self.finish(idx, conn);
                }
            }
        }
    }

    /// Routes one worker completion to its parked request slot.
    fn deliver(&mut self, reply: Reply) {
        let gen = token_gen(reply.token);
        let Some(&idx) = self.by_gen.get(&gen) else {
            return; // connection already closed — drop the reply
        };
        let Some(mut conn) = self.conns[idx].take() else {
            return;
        };
        let slot_id = token_slot(reply.token);
        let pos = conn
            .pending
            .iter()
            .position(|s| s.slot == slot_id && matches!(s.state, SlotState::Waiting));
        if let Some(pos) = pos {
            let started = conn.pending[pos].started;
            let latency_us = self.observed_latency(started);
            let mut bytes = Vec::new();
            match reply.payload {
                ReplyPayload::Entry { key, hit, entry } => {
                    if hit {
                        self.ctx.counters.hits.incr();
                    } else {
                        self.ctx.counters.misses.incr();
                    }
                    self.render_slot(&mut bytes, key, hit, &entry, latency_us);
                }
                ReplyPayload::Error {
                    code,
                    message,
                    key,
                    count_miss,
                    count_error,
                } => {
                    if count_miss {
                        self.ctx.counters.misses.incr();
                    }
                    if count_error {
                        self.ctx.counters.errors.incr();
                    }
                    let failed = ServeResponse::Failed(ServeError {
                        code,
                        message: message.as_ref().to_owned(),
                        key: Some(key),
                        verb: "schedule".to_owned(),
                        latency_us,
                    });
                    bytes = failed.encode().into_bytes();
                    bytes.push(b'\n');
                }
            }
            conn.pending[pos].state = SlotState::Done(bytes);
            self.pump(&mut conn);
        }
        self.finish(idx, conn);
    }

    /// Renders an entry into `bytes` for a parked slot (always the
    /// slot-buffer path — ordering is enforced by the FIFO).
    fn render_slot(
        &mut self,
        bytes: &mut Vec<u8>,
        key: u64,
        hit: bool,
        entry: &CachedResult,
        latency_us: u64,
    ) {
        match (&entry.result, entry.outcome_json()) {
            (Ok(_), Some(json)) => render_scheduled(bytes, key, hit, json.as_bytes(), latency_us),
            (Ok(outcome), None) => {
                let response = ServeResponse::Scheduled(Scheduled {
                    key,
                    cache_hit: hit,
                    outcome: outcome.clone(),
                    latency_us,
                });
                *bytes = response.encode().into_bytes();
                bytes.push(b'\n');
            }
            (Err(err), _) => {
                self.ctx.counters.errors.incr();
                let failed = ServeResponse::Failed(ServeError {
                    code: err.code,
                    message: err.message.clone(),
                    key: Some(key),
                    verb: "schedule".to_owned(),
                    latency_us,
                });
                *bytes = failed.encode().into_bytes();
                bytes.push(b'\n');
            }
        }
    }

    /// Enforces the per-connection buffer cap: a peer making the
    /// server hold more than `max_conn_buffer` bytes (frame flood
    /// against a stalled reader, typically) gets one final typed
    /// `overloaded` error and is closed after flushing — the
    /// write-stall timeout guarantees the fd is reclaimed even if the
    /// peer never reads.
    fn enforce_buffer_cap(&mut self, conn: &mut Conn) {
        let buffered = conn.buffered_bytes();
        self.ctx.counters.buffer_bytes.observe(buffered as u64);
        if self.max_conn_buffer == 0
            || buffered <= self.max_conn_buffer
            || conn.broken
            || conn.close_after_flush
        {
            return;
        }
        self.ctx.counters.conn_overflows.incr();
        let failed = ServeResponse::Failed(ServeError {
            code: ErrorCode::Overloaded,
            message: "overloaded: connection buffer cap exceeded".to_owned(),
            key: None,
            verb: "conn".to_owned(),
            latency_us: 0,
        });
        let mut bytes = failed.encode().into_bytes();
        bytes.push(b'\n');
        // Bypass the pending FIFO — whatever is parked there will
        // never be pumped once the connection is closing.
        conn.out.extend_from_slice(&bytes);
        conn.read_done = true;
        conn.close_after_flush = true;
    }

    /// Flushes what the socket accepts, then either parks the
    /// connection back in the slab or closes it.
    fn finish(&mut self, idx: usize, mut conn: Conn) {
        self.enforce_buffer_cap(&mut conn);
        flush(&mut conn);
        let flushed = conn.out_pos >= conn.out.len();
        let done = conn.broken
            || (flushed
                && conn.dribble.is_empty()
                && (conn.close_after_flush || (conn.read_done && conn.pending.is_empty())));
        if done {
            self.by_gen.remove(&conn.gen);
            self.free.push(idx);
            // Dropping `conn` closes the socket.
        } else {
            self.conns[idx] = Some(conn);
        }
    }
}

/// Parks the request's response position in the connection FIFO.
fn push_waiting(conn: &mut Conn, started: Instant) {
    conn.pending.push_back(PendingSlot {
        slot: conn.next_slot,
        started,
        state: SlotState::Waiting,
    });
    conn.next_slot = conn.next_slot.wrapping_add(1);
}

/// Writes as much of the pending output as the socket accepts.
fn flush(conn: &mut Conn) {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.broken = true;
                return;
            }
            Ok(n) => {
                conn.out_pos += n;
                conn.last_write_progress = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.broken = true;
                return;
            }
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
}

/// Condenses a pipeline run into the wire outcome.
fn outcome_of(run: &PipelineRun, app: &str, kind: SchedulerKind, degraded: bool) -> Outcome {
    let plan = run.plan();
    Outcome {
        app: app.to_owned(),
        scheduler: kind.name().to_owned(),
        clusters: run.schedule().len() as u64,
        rf: plan.rf(),
        dt_avoided_words: plan.dt_avoided_per_iter().get(),
        data_words: plan.total_data_words().get(),
        context_words: plan.total_context_words(),
        total_cycles: run.report().total().get(),
        degraded,
    }
}

/// Runs one pipeline under the supervisor's `catch_unwind`. `faulted`
/// attaches the server's fault plan (the degraded fallback runs clean
/// so it is guaranteed to complete whenever scheduling is feasible).
fn supervised_run(
    ctx: &Ctx,
    resolved: &Resolved,
    kind: SchedulerKind,
    cancel: Option<CancelToken>,
    faulted: bool,
) -> Result<Result<PipelineRun, McdsError>, ()> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if faulted && matches!(ctx.fault(Seam::WorkerRun), Some(Fault::WorkerPanic)) {
            panic!("injected worker panic");
        }
        let mut pipeline = Pipeline::new(resolved.app.clone())
            .arch(resolved.arch)
            .scheduler(kind)
            .metrics(Arc::clone(&ctx.metrics));
        if let Some(token) = cancel {
            pipeline = pipeline.cancellation(token);
        }
        if faulted {
            if let Some(plan) = &ctx.faults {
                // Scoped: this run's fault stream indexes per-request
                // counters salted by (key, attempt), so chaos replay is
                // a pure function of the request — independent of how
                // many allocation calls other requests made first.
                pipeline = pipeline.faults_scoped(plan, resolved.key);
            }
        }
        if let Some(sched) = &resolved.sched {
            pipeline = pipeline.schedule(sched.clone());
        }
        // Analysis memoization by structure key: arch-only variants of
        // an already-analyzed workload skip straight to data scheduling
        // + allocation. The single-flight guard blocks concurrent
        // preparers of the same structure; a failed preparation drops
        // the guard, wakes the waiters, and surfaces the (deterministic)
        // error through the normal outcome path.
        match ctx.cache.analysis_lookup(resolved.structure_key) {
            AnalysisLookup::Hit(prepared) => {
                ctx.counters.analysis_hits.incr();
                pipeline.run_prepared(&prepared)
            }
            AnalysisLookup::Lead(lead) => {
                ctx.counters.analysis_misses.incr();
                match pipeline.prepare() {
                    Ok(prepared) => {
                        let prepared = Arc::new(prepared);
                        lead.fulfill(Arc::clone(&prepared));
                        // Analyses hold live graphs and are not
                        // persisted; the index record accounts for
                        // warm-start coverage.
                        if let Some(store) = &ctx.store {
                            store.append_analysis(resolved.structure_key);
                        }
                        pipeline.run_prepared(&prepared)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }))
    .map_err(|_| ())
}

/// Replies answering the leader (miss) and every waiter (hit) with one
/// shared cache entry.
fn entry_replies(key: u64, leader: Token, waiters: Vec<Token>, entry: &CachedResult) -> Vec<Reply> {
    let mut replies = Vec::with_capacity(1 + waiters.len());
    replies.push(Reply {
        token: leader,
        payload: ReplyPayload::Entry {
            key,
            hit: false,
            entry: Arc::clone(entry),
        },
    });
    for token in waiters {
        replies.push(Reply {
            token,
            payload: ReplyPayload::Entry {
                key,
                hit: true,
                entry: Arc::clone(entry),
            },
        });
    }
    replies
}

/// Replies for a job dropped at dequeue (shed by the queue-delay
/// governor, or already past its deadline): the run never started, so
/// nothing counts as a miss or an error — the typed retryable code is
/// the whole story.
fn drop_replies(
    key: u64,
    leader: Token,
    waiters: Vec<Token>,
    code: ErrorCode,
    message: &Arc<str>,
) -> Vec<Reply> {
    let mut replies = Vec::with_capacity(1 + waiters.len());
    for token in std::iter::once(leader).chain(waiters) {
        replies.push(Reply {
            token,
            payload: ReplyPayload::Error {
                code,
                message: Arc::clone(message),
                key,
                count_miss: false,
                count_error: false,
            },
        });
    }
    replies
}

/// Replies failing the leader (counted as the miss) and every waiter
/// with the same transient error.
fn fail_replies(
    key: u64,
    leader: Token,
    waiters: Vec<Token>,
    code: ErrorCode,
    message: &Arc<str>,
) -> Vec<Reply> {
    let mut replies = Vec::with_capacity(1 + waiters.len());
    replies.push(Reply {
        token: leader,
        payload: ReplyPayload::Error {
            code,
            message: Arc::clone(message),
            key,
            count_miss: true,
            count_error: true,
        },
    });
    for token in waiters {
        replies.push(Reply {
            token,
            payload: ReplyPayload::Error {
                code,
                message: Arc::clone(message),
                key,
                count_miss: false,
                count_error: true,
            },
        });
    }
    replies
}

/// One worker under its supervisor: pops admitted jobs and computes
/// them through the pipeline. Deterministic results (success or
/// scheduling error) are published to the cache; abandoned and faulted
/// runs are not. A panicking run (injected or real) is contained by
/// `catch_unwind`: the worker recycles itself for the next job,
/// `serve.worker_restarts` counts the recycle, and the leader plus any
/// parked waiters get a typed retryable error instead of hanging.
fn worker_loop(ctx: &Ctx) {
    while let Some((job, shed)) = ctx.queue.pop() {
        // Jobs the queue-delay governor pulled from lower lanes while
        // congested: answer `overloaded` without running them.
        for victim in shed {
            ctx.counters.qos_shed[victim.class.index()].incr();
            ctx.counters.rejected.incr();
            let Job { guard, leader, .. } = *victim;
            let key = guard.key();
            let waiters = guard.abandon();
            let message = Arc::from("overloaded: shed after queue delay exceeded");
            ctx.complete(drop_replies(
                key,
                leader,
                waiters,
                ErrorCode::Overloaded,
                &message,
            ));
        }
        // Deadline-aware early drop: a job whose deadline passed while
        // it queued is answered `deadline` without burning a worker on
        // a run the client has already given up on.
        if job.cancel.as_ref().is_some_and(CancelToken::is_expired) {
            ctx.counters.deadline_misses.incr();
            ctx.counters.qos_expired.incr();
            let Job { guard, leader, .. } = *job;
            let key = guard.key();
            let waiters = guard.abandon();
            let message = Arc::from("deadline expired before the run started");
            ctx.complete(drop_replies(
                key,
                leader,
                waiters,
                ErrorCode::Deadline,
                &message,
            ));
            continue;
        }
        let Job {
            resolved,
            kind,
            degraded,
            cancel,
            guard,
            leader,
            ..
        } = *job;
        let flight_key = guard.key();
        ctx.inflight.fetch_add(1, Ordering::Relaxed);
        let caught = supervised_run(ctx, &resolved, kind, cancel, !degraded);
        let replies = match caught {
            Err(()) => {
                // Poisoned worker: recycle in place, never cache.
                ctx.counters.worker_restarts.incr();
                let waiters = guard.abandon();
                let message = Arc::from("worker panicked; the request is retryable");
                fail_replies(flight_key, leader, waiters, ErrorCode::Faulted, &message)
            }
            Ok(Ok(run)) => {
                if degraded {
                    ctx.counters.degraded.incr();
                }
                let entry = CachedEntry::ok(outcome_of(&run, resolved.app.name(), kind, degraded));
                let (shared, waiters) = guard.fulfill(entry);
                // Journal after publish: the in-memory entry is the
                // source of truth, the journal is what survives a
                // process kill.
                if let Some(store) = &ctx.store {
                    store.append_entry(flight_key, &shared);
                    store.maybe_compact(&ctx.cache);
                }
                entry_replies(flight_key, leader, waiters, &shared)
            }
            Ok(Err(McdsError::Cancelled(reason))) => {
                // Not a pure function of the request — never cached.
                ctx.counters.deadline_misses.incr();
                let message: Arc<str> = Arc::from(format!("run abandoned: {reason}").as_str());
                let fallback = if ctx.degrade && kind == SchedulerKind::Cds {
                    // Fall back to the cheaper within-cluster-only
                    // scheduler, clean (no faults, no deadline), and
                    // serve + cache it under the *degraded* key. The
                    // primary key stays uncomputed so a later request
                    // with a generous deadline gets the full CDS.
                    supervised_run(ctx, &resolved, SchedulerKind::Ds, None, false).ok()
                } else {
                    None
                };
                if let Some(Ok(run)) = fallback {
                    ctx.counters.degraded.incr();
                    let dkey = degraded_key(resolved.key);
                    let outcome = outcome_of(&run, resolved.app.name(), SchedulerKind::Ds, true);
                    let (shared, dwaiters) = ctx.cache.publish(dkey, CachedEntry::ok(outcome));
                    if let Some(store) = &ctx.store {
                        store.append_entry(dkey, &shared);
                        store.append_degraded(resolved.key, dkey);
                        store.maybe_compact(&ctx.cache);
                    }
                    let pwaiters = guard.abandon();
                    let mut replies = entry_replies(dkey, leader, dwaiters, &shared);
                    for token in pwaiters {
                        replies.push(Reply {
                            token,
                            payload: ReplyPayload::Error {
                                code: ErrorCode::Deadline,
                                message: Arc::clone(&message),
                                key: flight_key,
                                count_miss: false,
                                count_error: true,
                            },
                        });
                    }
                    replies
                } else {
                    // The fallback failed too (infeasible, disabled, or
                    // it panicked): plain abandon.
                    let waiters = guard.abandon();
                    fail_replies(flight_key, leader, waiters, ErrorCode::Deadline, &message)
                }
            }
            Ok(Err(e @ McdsError::Faulted(_))) => {
                // Injected fault: transient — never cached, retryable.
                let waiters = guard.abandon();
                let message = Arc::from(e.to_string().as_str());
                fail_replies(flight_key, leader, waiters, ErrorCode::Faulted, &message)
            }
            Ok(Err(e)) => {
                // Scheduling errors are deterministic → cacheable (and
                // journaled: a recovered failure is served without
                // re-running the pipeline just like a success).
                let entry = CachedEntry::err(ErrorCode::BadRequest, e.to_string());
                let (shared, waiters) = guard.fulfill(entry);
                if let Some(store) = &ctx.store {
                    store.append_entry(flight_key, &shared);
                    store.maybe_compact(&ctx.cache);
                }
                entry_replies(flight_key, leader, waiters, &shared)
            }
        };
        ctx.complete(replies);
        ctx.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Resolves a `schedule` request into pipeline inputs plus its
/// canonical key.
fn resolve(spec: ScheduleSpec) -> Result<Resolved, String> {
    let class = spec.qos();
    let kind: SchedulerKind = spec
        .scheduler
        .as_deref()
        .unwrap_or("cds")
        .parse()
        .map_err(|e: McdsError| e.to_string())?;
    let arch = match spec.arch {
        Some(arch) => arch,
        None => ArchParams::m1()
            .to_builder()
            .fb_set_words(Words::kilo(spec.fb_kw.unwrap_or(1).max(1)))
            .build(),
    };
    let (app, sched) = match (spec.app, spec.workload.as_deref()) {
        (Some(_), Some(_)) => return Err("`app` and `workload` are mutually exclusive".to_owned()),
        (None, None) => return Err("schedule needs `app` or `workload`".to_owned()),
        (Some(app), None) => {
            app.validate().map_err(|e| format!("invalid app: {e}"))?;
            (app, None)
        }
        (None, Some(name)) => {
            let iterations = spec.iterations.unwrap_or(16);
            let (app, sched) = mcds_workloads::mix::by_name(name, iterations)
                .ok_or_else(|| format!("unknown workload `{name}` (and iterations must be > 0)"))?;
            (app, Some(sched))
        }
    };
    let skey = structure_key(&app, sched.as_ref());
    let key = compose_key(skey, arch_key(&arch, kind, &SchedulerConfig::default()));
    Ok(Resolved {
        app,
        sched,
        arch,
        kind,
        key,
        structure_key: skey,
        deadline_ms: spec.deadline_ms,
        class,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Lookup;

    /// A queued job aged `age_ms` into the past, leading a fresh flight
    /// on its own key so the guard is real (dropping it parks orphans,
    /// which these tests never read back).
    fn job(cache: &Arc<OutcomeCache>, key: u64, class: QosClass, age_ms: u64) -> Box<Job> {
        let resolved = Arc::new(resolve(ScheduleSpec::workload("e1")).expect("catalog resolves"));
        let Lookup::Lead(guard) = cache.lookup(key, key) else {
            panic!("a fresh key always leads");
        };
        Box::new(Job {
            resolved,
            kind: SchedulerKind::Cds,
            degraded: false,
            cancel: None,
            guard,
            leader: key,
            class,
            enqueued: Instant::now()
                .checked_sub(Duration::from_millis(age_ms))
                .expect("test ages fit in the clock"),
        })
    }

    #[test]
    fn lanes_pop_in_strict_priority_order() {
        let cache = OutcomeCache::new();
        let queue = JobQueue::new([4, 4, 4], None);
        queue
            .try_push(job(&cache, 1, QosClass::Batch, 0))
            .map_err(|_| ())
            .expect("admitted");
        queue
            .try_push(job(&cache, 2, QosClass::Standard, 0))
            .map_err(|_| ())
            .expect("admitted");
        queue
            .try_push(job(&cache, 3, QosClass::Priority, 0))
            .map_err(|_| ())
            .expect("admitted");
        assert_eq!(queue.depths(), [1, 1, 1]);
        let order: Vec<QosClass> = (0..3)
            .map(|_| {
                let (job, shed) = queue.pop().expect("a job is queued");
                assert!(shed.is_empty(), "fresh jobs never trip the governor");
                job.class
            })
            .collect();
        assert_eq!(
            order,
            vec![QosClass::Priority, QosClass::Standard, QosClass::Batch]
        );
        assert_eq!(queue.depths(), [0, 0, 0]);
    }

    #[test]
    fn lane_quotas_reject_independently_and_close_is_distinguished() {
        let cache = OutcomeCache::new();
        let queue = JobQueue::new([1, 1, 1], None);
        queue
            .try_push(job(&cache, 10, QosClass::Standard, 0))
            .map_err(|_| ())
            .expect("first standard admitted");
        let (_, closed) = queue
            .try_push(job(&cache, 11, QosClass::Standard, 0))
            .expect_err("standard lane is full");
        assert!(!closed, "a full lane is not a closed queue");
        // A full standard lane does not steal the other lanes' quota.
        queue
            .try_push(job(&cache, 12, QosClass::Priority, 0))
            .map_err(|_| ())
            .expect("priority lane has its own quota");
        queue
            .try_push(job(&cache, 13, QosClass::Batch, 0))
            .map_err(|_| ())
            .expect("batch lane has its own quota");
        queue.close();
        let (_, closed) = queue
            .try_push(job(&cache, 14, QosClass::Priority, 0))
            .expect_err("closed queue admits nothing");
        assert!(closed, "shutdown rejections are typed as such");
    }

    #[test]
    fn congested_pop_sheds_stale_lower_lane_heads_lowest_class_first() {
        let cache = OutcomeCache::new();
        let queue = JobQueue::new([8, 8, 8], Some(Duration::from_millis(50)));
        queue
            .try_push(job(&cache, 20, QosClass::Priority, 200))
            .map_err(|_| ())
            .expect("admitted");
        queue
            .try_push(job(&cache, 21, QosClass::Standard, 200))
            .map_err(|_| ())
            .expect("admitted");
        queue
            .try_push(job(&cache, 22, QosClass::Batch, 200))
            .map_err(|_| ())
            .expect("admitted");
        queue
            .try_push(job(&cache, 23, QosClass::Batch, 0))
            .map_err(|_| ())
            .expect("admitted");
        // The popped priority job waited 200ms > 50ms: the governor
        // sheds the stale heads of the lanes below it, batch before
        // standard, and stops at the first fresh head.
        let (popped, shed) = queue.pop().expect("a job is queued");
        assert_eq!(popped.class, QosClass::Priority, "priority is never shed");
        let shed_classes: Vec<QosClass> = shed.iter().map(|j| j.class).collect();
        assert_eq!(shed_classes, vec![QosClass::Batch, QosClass::Standard]);
        assert_eq!(
            queue.depths(),
            [0, 0, 1],
            "the fresh batch job rode out the purge"
        );
    }

    #[test]
    fn uncongested_pop_never_sheds_even_with_stale_lower_jobs() {
        let cache = OutcomeCache::new();
        let queue = JobQueue::new([8, 8, 8], Some(Duration::from_millis(50)));
        queue
            .try_push(job(&cache, 30, QosClass::Priority, 0))
            .map_err(|_| ())
            .expect("admitted");
        queue
            .try_push(job(&cache, 31, QosClass::Batch, 200))
            .map_err(|_| ())
            .expect("admitted");
        // The popped job itself flowed freely — the queue is keeping
        // up, so nothing is shed no matter how old the batch head is.
        let (popped, shed) = queue.pop().expect("a job is queued");
        assert_eq!(popped.class, QosClass::Priority);
        assert!(shed.is_empty(), "only the popped job's sojourn governs");
        assert_eq!(queue.depths(), [0, 0, 1]);
    }
}
