//! The scheduling daemon — a readiness-driven reactor.
//!
//! One thread owns every socket: the listener and all connections are
//! nonblocking and multiplexed through `poll(2)` (see [`crate::sys`]).
//! Received bytes accumulate in per-connection [`FrameBuffer`]s and are
//! scanned zero-copy; decoded `schedule` requests resolve to a
//! canonical [`request_key`] and go through the sharded
//! [`OutcomeCache`]: hits are answered inline by splicing the
//! pre-serialized outcome into the connection's write buffer
//! ([`render_scheduled`]), the single leader per key is pushed onto a
//! **bounded admission queue** (full queue → typed `overloaded`
//! rejection, not unbounded memory) and computed by a fixed worker
//! pool, and concurrent requesters of an in-flight key park as
//! *waiters* — no thread blocks — until the leader's completion fans
//! the shared result out to all of them through the completion queue
//! and the reactor's [`Waker`].
//!
//! Responses on a connection are delivered in request order (a
//! per-connection FIFO of pending slots), so pipelined clients can keep
//! many requests in flight and still match responses positionally. The
//! `shutdown` verb drains gracefully: the listener stops accepting,
//! buffered frames are answered, in-flight computations finish, then
//! [`Server::run`] returns.
//!
//! Identical request lines are memoized (bytes → resolved pipeline
//! inputs), so a hot key's steady state costs a hash lookup and a
//! buffer splice instead of a JSON parse and an application rebuild.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mcds_core::{
    arch_key, compose_key, structure_key, CancelToken, Counter, Fault, FaultPlan, Histogram,
    McdsError, MetricsRegistry, Pipeline, PipelineRun, SchedulerConfig, SchedulerKind, Seam,
};
use mcds_model::{Application, ArchParams, ClusterSchedule, Words};
use serde::{Deserialize, Serialize};

use crate::cache::{
    degraded_key, AnalysisLookup, CachedEntry, CachedResult, FlightGuard, Lookup, OutcomeCache,
    Token, DEFAULT_SHARDS,
};
use crate::protocol::{
    decode_request, render_scheduled, ErrorCode, FrameBuffer, FrameError, Outcome, ScheduleSpec,
    Scheduled, ServeError, ServeRequest, ServeResponse, StatEntry, StatsReply, WireVersion,
};
use crate::sys::{PollSet, Waker};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads computing schedules.
    pub workers: usize,
    /// Admission queue capacity; a full queue rejects instead of
    /// buffering. `0` rejects every compute (useful for overload
    /// tests).
    pub queue_depth: usize,
    /// Upper bound on one reactor tick's `poll` timeout in
    /// milliseconds (completions and I/O wake it earlier).
    pub poll_ms: u64,
    /// Largest accepted request frame in bytes; a connection that
    /// buffers more without a newline gets a typed error and is
    /// dropped instead of growing memory without bound.
    pub max_frame_bytes: usize,
    /// Outcome-cache shard count (rounded up to a power of two).
    pub shards: usize,
    /// Deterministic fault-injection plan for robustness testing
    /// (`None` in production: zero injected faults).
    pub faults: Option<Arc<FaultPlan>>,
    /// Enables the degraded fallback path: a full-CDS request whose
    /// run is cancelled (deadline, injected stage fault) is re-run
    /// through the cheaper within-cluster-only scheduler and served
    /// with `degraded: true` instead of failing.
    pub degrade: bool,
    /// Requests with a deadline below this many milliseconds skip the
    /// full CDS entirely and go straight to the degraded scheduler
    /// (`0` disables the upfront check).
    pub degrade_below_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .clamp(1, 8),
            queue_depth: 64,
            poll_ms: 25,
            max_frame_bytes: 256 * 1024,
            shards: DEFAULT_SHARDS,
            faults: None,
            degrade: true,
            degrade_below_ms: 0,
        }
    }
}

/// What one server lifetime handled, returned by [`Server::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Total request lines handled.
    pub requests: u64,
    /// `schedule` cache hits (including single-flight waiters).
    pub cache_hits: u64,
    /// `schedule` computations performed.
    pub cache_misses: u64,
    /// Overload rejections (admission queue full).
    pub rejected: u64,
    /// Runs abandoned on a deadline.
    pub deadline_misses: u64,
    /// Malformed or failed requests.
    pub errors: u64,
    /// Worker threads recycled after a panic (supervised recovery).
    #[serde(default)]
    pub worker_restarts: u64,
    /// Requests served by the degraded fallback scheduler.
    #[serde(default)]
    pub degraded: u64,
    /// Faults the attached [`FaultPlan`] injected (all seams).
    #[serde(default)]
    pub faults_injected: u64,
    /// Un-versioned frames accepted through the legacy compat shim
    /// (deprecated — the shim lasts one release).
    #[serde(default)]
    pub legacy_frames: u64,
    /// Computations that reused a memoized analysis (arch-only
    /// variants of an already-analyzed workload structure).
    #[serde(default)]
    pub analysis_hits: u64,
    /// Computations that had to run the analysis front half.
    #[serde(default)]
    pub analysis_misses: u64,
}

/// A `schedule` line resolved into pipeline inputs, shared between the
/// reactor's memo table and the worker that computes it.
struct Resolved {
    app: Application,
    sched: Option<ClusterSchedule>,
    arch: ArchParams,
    kind: SchedulerKind,
    /// Canonical content key of the *full-quality* request.
    key: u64,
    /// The workload-structure half of `key` — the analysis cache's
    /// address, shared by every arch/scheduler variant.
    structure_key: u64,
    deadline_ms: Option<u64>,
}

/// Memoized fate of an exact request line (bytes → outcome of the
/// parse/resolve stage, which is a pure function of the line).
#[derive(Clone)]
enum Memo {
    Good {
        resolved: Arc<Resolved>,
        legacy: bool,
    },
    Bad {
        code: ErrorCode,
        message: Arc<str>,
        legacy: bool,
    },
}

/// Parse-memo capacity; lines beyond this are simply not memoized.
const MEMO_CAP: usize = 16 * 1024;

/// One admitted computation.
struct Job {
    resolved: Arc<Resolved>,
    /// Scheduler actually run (`Ds` when routed degraded upfront).
    kind: SchedulerKind,
    /// `true` when the request was routed to the degraded scheduler
    /// upfront (tight deadline). Degraded jobs run clean and
    /// uncancellable — they exist to return *something*.
    degraded: bool,
    cancel: Option<CancelToken>,
    guard: FlightGuard,
    /// The leader's reply token (waiter tokens live in the cache).
    leader: Token,
}

struct QueueState {
    jobs: VecDeque<Box<Job>>,
    closed: bool,
}

/// The bounded admission queue.
struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    depth: usize,
}

impl JobQueue {
    fn new(depth: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            depth,
        }
    }

    /// Admits the job, or hands it back (with whether the queue was
    /// closed rather than full) — the caller turns that into a typed
    /// rejection.
    fn try_push(&self, job: Box<Job>) -> Result<(), (Box<Job>, bool)> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err((job, true));
        }
        if state.jobs.len() >= self.depth {
            return Err((job, false));
        }
        state.jobs.push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Next job, blocking; `None` once the queue is closed and empty.
    fn pop(&self) -> Option<Box<Job>> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }
}

/// How a worker's completion answers one parked request.
enum ReplyPayload {
    /// A published cache entry: render as hit/miss (successes splice
    /// the pre-serialized outcome; cached deterministic failures render
    /// as typed errors).
    Entry {
        key: u64,
        hit: bool,
        entry: CachedResult,
    },
    /// A transient, uncached failure.
    Error {
        code: ErrorCode,
        message: Arc<str>,
        key: u64,
        /// `true` for the leader of an abandoned run (it *was* the
        /// cache miss); waiters count neither hit nor miss.
        count_miss: bool,
        /// `true` when the failure counts under `serve.errors`
        /// (waiter-deadline expiries count only `deadline_misses`,
        /// matching the pre-reactor server).
        count_error: bool,
    },
}

struct Reply {
    token: Token,
    payload: ReplyPayload,
}

/// Pre-resolved metric handles — the hot path never re-hashes a
/// counter name.
struct Counters {
    requests: Counter,
    hits: Counter,
    misses: Counter,
    rejected: Counter,
    deadline_misses: Counter,
    errors: Counter,
    worker_restarts: Counter,
    degraded: Counter,
    legacy: Counter,
    analysis_hits: Counter,
    analysis_misses: Counter,
    latency: Histogram,
}

impl Counters {
    fn new(metrics: &Arc<MetricsRegistry>) -> Counters {
        Counters {
            requests: metrics.counter("serve.requests"),
            hits: metrics.counter("serve.cache.hits"),
            misses: metrics.counter("serve.cache.misses"),
            rejected: metrics.counter("serve.rejected"),
            deadline_misses: metrics.counter("serve.deadline_misses"),
            errors: metrics.counter("serve.errors"),
            worker_restarts: metrics.counter("serve.worker_restarts"),
            degraded: metrics.counter("serve.degraded"),
            legacy: metrics.counter("serve.legacy_frames"),
            analysis_hits: metrics.counter("serve.analysis.hits"),
            analysis_misses: metrics.counter("serve.analysis.misses"),
            latency: metrics.histogram("serve.latency_us"),
        }
    }
}

/// Shared state of one server lifetime (reactor + workers).
struct Ctx {
    cache: Arc<OutcomeCache>,
    metrics: Arc<MetricsRegistry>,
    queue: JobQueue,
    /// Worker → reactor completion queue; pushing wakes the reactor.
    completions: Mutex<Vec<Reply>>,
    waker: Waker,
    faults: Option<Arc<FaultPlan>>,
    fault_delay: Duration,
    degrade: bool,
    degrade_below_ms: u64,
    counters: Counters,
}

impl Ctx {
    /// One fault decision at a serve-side seam; firing bumps the
    /// seam's `fault.*` counter.
    fn fault(&self, seam: Seam) -> Option<Fault> {
        let fault = self.faults.as_ref()?.decide(seam)?;
        self.metrics.incr(seam.metric());
        Some(fault)
    }

    /// Hands completed replies to the reactor and wakes it.
    fn complete(&self, replies: Vec<Reply>) {
        if replies.is_empty() {
            return;
        }
        self.completions
            .lock()
            .expect("completion lock")
            .extend(replies);
        self.waker.wake();
    }
}

/// A bound, not-yet-running scheduling daemon.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServeConfig,
    metrics: Arc<MetricsRegistry>,
}

impl Server {
    /// Binds the listener (without accepting yet).
    ///
    /// # Errors
    ///
    /// [`McdsError::Io`] when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Server, McdsError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            config,
            metrics: Arc::new(MetricsRegistry::new()),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (shared with the pipelines it
    /// runs; also exposed over the wire via the `stats` verb).
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Serves until a `shutdown` request arrives, then drains: buffered
    /// requests on open connections are answered, queued jobs finish,
    /// and the final counters are returned.
    ///
    /// # Errors
    ///
    /// [`McdsError::Io`] on listener/poll failures. Per-connection and
    /// per-request errors never abort the server.
    pub fn run(self) -> Result<ServeSummary, McdsError> {
        self.listener.set_nonblocking(true)?;
        let ctx = Ctx {
            cache: OutcomeCache::with_shards(self.config.shards),
            metrics: Arc::clone(&self.metrics),
            queue: JobQueue::new(self.config.queue_depth),
            completions: Mutex::new(Vec::new()),
            waker: Waker::new()?,
            fault_delay: Duration::from_micros(
                self.config
                    .faults
                    .as_ref()
                    .map_or(0, |f| f.config().delay_us),
            ),
            faults: self.config.faults.clone(),
            degrade: self.config.degrade,
            degrade_below_ms: self.config.degrade_below_ms,
            counters: Counters::new(&self.metrics),
        };
        std::thread::scope(|s| -> Result<(), McdsError> {
            for _ in 0..self.config.workers.max(1) {
                s.spawn(|| worker_loop(&ctx));
            }
            let mut reactor = Reactor::new(&ctx, &self.listener, &self.config);
            let result = reactor.run();
            ctx.queue.close();
            result
        })?;
        let count = |name: &str| self.metrics.get(name).unwrap_or(0);
        Ok(ServeSummary {
            requests: count("serve.requests"),
            cache_hits: count("serve.cache.hits"),
            cache_misses: count("serve.cache.misses"),
            rejected: count("serve.rejected"),
            deadline_misses: count("serve.deadline_misses"),
            errors: count("serve.errors"),
            worker_restarts: count("serve.worker_restarts"),
            degraded: count("serve.degraded"),
            faults_injected: self
                .config
                .faults
                .as_ref()
                .map_or(0, |f| f.snapshot().total_fired()),
            legacy_frames: count("serve.legacy_frames"),
            analysis_hits: count("serve.analysis.hits"),
            analysis_misses: count("serve.analysis.misses"),
        })
    }
}

/// Packs a reply token from a connection generation and request slot.
fn pack_token(gen: u32, slot: u32) -> Token {
    (u64::from(gen) << 32) | u64::from(slot)
}

fn token_gen(token: Token) -> u32 {
    (token >> 32) as u32
}

fn token_slot(token: Token) -> u32 {
    token as u32
}

fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(unix)]
fn fd_of<T: std::os::fd::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn fd_of<T>(_t: &T) -> i32 {
    0
}

/// One parked response position in a connection's FIFO. Responses are
/// written strictly in request order, so a pipelined client can match
/// them positionally.
struct PendingSlot {
    slot: u32,
    started: Instant,
    state: SlotState,
}

enum SlotState {
    /// The request is computing (leader) or parked on another flight
    /// (waiter).
    Waiting,
    /// The rendered response, ready to pump once it reaches the front.
    Done(Vec<u8>),
}

/// One nonblocking connection owned by the reactor.
struct Conn {
    stream: TcpStream,
    gen: u32,
    frames: FrameBuffer,
    /// Rendered-but-unwritten response bytes.
    out: Vec<u8>,
    out_pos: usize,
    pending: VecDeque<PendingSlot>,
    next_slot: u32,
    /// Remaining chunks of an injected slow-loris write, dribbled out
    /// by timer.
    dribble: VecDeque<Vec<u8>>,
    /// No more bytes will be read (EOF, drain, or a fatal frame
    /// error).
    read_done: bool,
    /// Close once `out` and `dribble` are fully written.
    close_after_flush: bool,
    /// Close immediately; discard anything unwritten.
    broken: bool,
}

enum TimerEvent {
    /// A parked waiter's own deadline: deregister it from the flight
    /// and answer a typed retryable `deadline` error.
    WaiterDeadline { token: Token, key: u64 },
    /// Next chunk of an injected slow-loris write.
    Dribble { gen: u32 },
}

struct TimerEntry {
    at: Instant,
    seq: u64,
    event: TimerEvent,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The single-threaded reactor: owns every socket, the timer heap, and
/// the parse memo; workers only ever touch the cache, the queue, and
/// the completion queue.
struct Reactor<'a> {
    ctx: &'a Ctx,
    listener: &'a TcpListener,
    poll_ms: u64,
    max_frame_bytes: usize,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    by_gen: HashMap<u32, usize>,
    next_gen: u32,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    draining: bool,
    drained_buffered: bool,
    memo: HashMap<Box<[u8]>, Memo>,
    poll: PollSet,
    chunk: Vec<u8>,
}

impl<'a> Reactor<'a> {
    fn new(ctx: &'a Ctx, listener: &'a TcpListener, config: &ServeConfig) -> Reactor<'a> {
        Reactor {
            ctx,
            listener,
            poll_ms: config.poll_ms.max(1),
            max_frame_bytes: config.max_frame_bytes,
            conns: Vec::new(),
            free: Vec::new(),
            by_gen: HashMap::new(),
            next_gen: 1,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            draining: false,
            drained_buffered: false,
            memo: HashMap::new(),
            poll: PollSet::new(),
            chunk: vec![0u8; 64 * 1024],
        }
    }

    fn run(&mut self) -> Result<(), McdsError> {
        loop {
            let replies =
                std::mem::take(&mut *self.ctx.completions.lock().expect("completion lock"));
            for reply in replies {
                self.deliver(reply);
            }
            for (key, waiters) in self.ctx.cache.take_orphans() {
                for token in waiters {
                    self.deliver(Reply {
                        token,
                        payload: ReplyPayload::Error {
                            code: ErrorCode::Faulted,
                            message: Arc::from("worker died; the request is retryable"),
                            key,
                            count_miss: false,
                            count_error: true,
                        },
                    });
                }
            }
            self.fire_due_timers();
            if self.draining && !self.drained_buffered {
                self.drained_buffered = true;
                for idx in 0..self.conns.len() {
                    if let Some(mut conn) = self.conns[idx].take() {
                        self.drain_frames(&mut conn);
                        conn.read_done = true;
                        self.finish(idx, conn);
                    }
                }
            }
            if self.draining && self.by_gen.is_empty() {
                return Ok(());
            }
            let (listener_idx, waker_idx, conn_poll) = self.build_poll_set();
            let timeout = self.poll_timeout();
            self.poll.poll(timeout)?;
            self.ctx.waker.drain();
            let _ = waker_idx;
            if listener_idx.is_some_and(|idx| self.poll.readable(idx)) {
                self.accept_all()?;
            }
            for (idx, pidx) in conn_poll {
                if self.poll.readable(pidx) {
                    self.service_readable(idx);
                } else if self.poll.writable(pidx) {
                    if let Some(conn) = self.conns[idx].take() {
                        self.finish(idx, conn);
                    }
                }
            }
        }
    }

    /// Registers every live descriptor for the next `poll`; returns the
    /// poll indices of the listener, the waker, and each interested
    /// connection.
    #[allow(clippy::type_complexity)]
    fn build_poll_set(&mut self) -> (Option<usize>, Option<usize>, Vec<(usize, usize)>) {
        self.poll.clear();
        let listener_idx = if self.draining {
            None
        } else {
            Some(self.poll.push(fd_of(self.listener), true, false))
        };
        let waker_fd = self.ctx.waker.fd();
        let waker_idx = if waker_fd >= 0 {
            Some(self.poll.push(waker_fd, true, false))
        } else {
            None
        };
        let mut conn_poll = Vec::new();
        for (i, slot) in self.conns.iter().enumerate() {
            if let Some(conn) = slot {
                let want_read = !conn.read_done;
                let want_write = conn.out_pos < conn.out.len();
                if want_read || want_write {
                    conn_poll.push((
                        i,
                        self.poll.push(fd_of(&conn.stream), want_read, want_write),
                    ));
                }
            }
        }
        (listener_idx, waker_idx, conn_poll)
    }

    /// Poll timeout in ms: the configured tick, shortened to the next
    /// due timer.
    fn poll_timeout(&self) -> i32 {
        let mut timeout = i64::try_from(self.poll_ms).unwrap_or(i64::MAX);
        if let Some(Reverse(next)) = self.timers.peek() {
            let until = next
                .at
                .saturating_duration_since(Instant::now())
                .as_millis();
            timeout = timeout.min(i64::try_from(until).unwrap_or(i64::MAX));
        }
        i32::try_from(timeout.clamp(0, 60_000)).unwrap_or(25)
    }

    fn accept_all(&mut self) -> Result<(), McdsError> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true)?;
                    let _ = stream.set_nodelay(true);
                    self.add_conn(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        let gen = self.next_gen;
        self.next_gen = self.next_gen.wrapping_add(1);
        let conn = Conn {
            stream,
            gen,
            frames: FrameBuffer::new(self.max_frame_bytes),
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            next_slot: 0,
            dribble: VecDeque::new(),
            read_done: false,
            close_after_flush: false,
            broken: false,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.conns[idx] = Some(conn);
                idx
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        self.by_gen.insert(gen, idx);
    }

    fn service_readable(&mut self, idx: usize) {
        let Some(mut conn) = self.conns[idx].take() else {
            return;
        };
        loop {
            match conn.stream.read(&mut self.chunk) {
                Ok(0) => {
                    conn.read_done = true;
                    break;
                }
                Ok(n) => conn.frames.extend(&self.chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.broken = true;
                    break;
                }
            }
        }
        self.drain_frames(&mut conn);
        self.finish(idx, conn);
    }

    /// Answers every complete frame buffered on `conn`.
    fn drain_frames(&mut self, conn: &mut Conn) {
        if conn.broken || conn.close_after_flush {
            return;
        }
        let mut frames = std::mem::replace(&mut conn.frames, FrameBuffer::new(1));
        loop {
            match frames.next_frame() {
                Ok(Some(line)) => {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    self.process_line(conn, line);
                    if conn.broken || conn.close_after_flush {
                        break;
                    }
                }
                Ok(None) => break,
                Err(FrameError::InvalidUtf8) => {
                    // The bad frame was consumed — answer typed and
                    // keep serving this connection.
                    self.ctx.counters.errors.incr();
                    let failed = ServeResponse::Failed(ServeError {
                        code: ErrorCode::BadRequest,
                        message: FrameError::InvalidUtf8.to_string(),
                        key: None,
                        verb: "frame".to_owned(),
                        latency_us: 0,
                    });
                    self.queue_response(conn, &failed);
                }
                Err(err @ FrameError::Oversized { .. }) => {
                    // The frame boundary is lost: answer typed, then
                    // close instead of buffering forever.
                    self.ctx.counters.errors.incr();
                    let failed = ServeResponse::Failed(ServeError {
                        code: ErrorCode::Oversized,
                        message: err.to_string(),
                        key: None,
                        verb: "frame".to_owned(),
                        latency_us: 0,
                    });
                    self.queue_response(conn, &failed);
                    conn.read_done = true;
                    conn.close_after_flush = true;
                    break;
                }
            }
        }
        conn.frames = frames;
    }

    fn memo_insert(&mut self, line: &str, memo: Memo) {
        if self.memo.len() < MEMO_CAP {
            self.memo.insert(line.as_bytes().into(), memo);
        }
    }

    fn process_line(&mut self, conn: &mut Conn, line: &str) {
        // An injected pre-processing disconnect drops the request (and
        // the connection) before it is even counted — the client must
        // retry on a fresh connection, as with a real peer reset.
        if matches!(self.ctx.fault(Seam::ServeRead), Some(Fault::Disconnect)) {
            conn.broken = true;
            return;
        }
        let started = Instant::now();
        self.ctx.counters.requests.incr();
        if let Some(memo) = self.memo.get(line.as_bytes()).cloned() {
            match memo {
                Memo::Good { resolved, legacy } => {
                    if legacy {
                        self.ctx.counters.legacy.incr();
                    }
                    self.handle_schedule(conn, started, &resolved);
                }
                Memo::Bad {
                    code,
                    message,
                    legacy,
                } => {
                    if legacy {
                        self.ctx.counters.legacy.incr();
                    }
                    self.ctx.counters.errors.incr();
                    self.respond_failed(conn, started, code, &message, "schedule", None);
                }
            }
            return;
        }
        let (request, version) = match decode_request(line) {
            Ok(decoded) => decoded,
            Err(err) => {
                self.ctx.counters.errors.incr();
                let code = err.code();
                let message = err.to_string();
                self.memo_insert(
                    line,
                    Memo::Bad {
                        code,
                        message: Arc::from(message.as_str()),
                        legacy: false,
                    },
                );
                self.respond_failed(conn, started, code, &message, "unknown", None);
                return;
            }
        };
        let legacy = version == WireVersion::Legacy;
        if legacy {
            self.ctx.counters.legacy.incr();
        }
        match request {
            ServeRequest::Ping => {
                let latency_us = self.observed_latency(started);
                self.queue_response(conn, &ServeResponse::Pong { latency_us });
            }
            ServeRequest::Stats => {
                let entries = self
                    .ctx
                    .metrics
                    .snapshot()
                    .into_iter()
                    .map(|(name, value)| StatEntry { name, value })
                    .collect();
                let latency_us = self.observed_latency(started);
                self.queue_response(
                    conn,
                    &ServeResponse::Stats(StatsReply {
                        entries,
                        latency_us,
                    }),
                );
            }
            ServeRequest::Shutdown => {
                self.draining = true;
                let latency_us = self.observed_latency(started);
                self.queue_response(conn, &ServeResponse::ShuttingDown { latency_us });
            }
            ServeRequest::Schedule(spec) => match resolve(spec) {
                Ok(resolved) => {
                    let resolved = Arc::new(resolved);
                    self.memo_insert(
                        line,
                        Memo::Good {
                            resolved: Arc::clone(&resolved),
                            legacy,
                        },
                    );
                    self.handle_schedule(conn, started, &resolved);
                }
                Err(message) => {
                    self.ctx.counters.errors.incr();
                    self.memo_insert(
                        line,
                        Memo::Bad {
                            code: ErrorCode::BadRequest,
                            message: Arc::from(message.as_str()),
                            legacy,
                        },
                    );
                    self.respond_failed(
                        conn,
                        started,
                        ErrorCode::BadRequest,
                        &message,
                        "schedule",
                        None,
                    );
                }
            },
        }
    }

    fn handle_schedule(&mut self, conn: &mut Conn, started: Instant, resolved: &Arc<Resolved>) {
        let ctx = self.ctx;
        let deadline = resolved
            .deadline_ms
            .map(|ms| started + Duration::from_millis(ms));
        // Upfront degrade: when the deadline is too tight for the full
        // CDS to be worth attempting, route the request straight to the
        // cheaper within-cluster-only scheduler (its own cache key, no
        // cancellation — it exists to succeed).
        let degraded_upfront = ctx.degrade
            && ctx.degrade_below_ms > 0
            && resolved.kind == SchedulerKind::Cds
            && resolved
                .deadline_ms
                .is_some_and(|ms| ms < ctx.degrade_below_ms);
        let entry_key = if degraded_upfront {
            degraded_key(resolved.key)
        } else {
            resolved.key
        };
        // Warm fast path: a published entry answers inline without
        // touching single-flight bookkeeping.
        if let Some(entry) = ctx.cache.get(entry_key) {
            ctx.counters.hits.incr();
            self.respond_entry(conn, started, entry_key, true, &entry);
            return;
        }
        let token = pack_token(conn.gen, conn.next_slot);
        match ctx.cache.lookup(entry_key, token) {
            Lookup::Hit(entry) => {
                ctx.counters.hits.incr();
                self.respond_entry(conn, started, entry_key, true, &entry);
            }
            Lookup::Wait => {
                push_waiting(conn, started);
                if let Some(at) = deadline {
                    self.schedule_timer(
                        at,
                        TimerEvent::WaiterDeadline {
                            token,
                            key: entry_key,
                        },
                    );
                }
            }
            Lookup::Lead(guard) => {
                let cancel = if degraded_upfront {
                    None
                } else {
                    Some(deadline.map_or_else(CancelToken::new, CancelToken::at))
                };
                let job = Box::new(Job {
                    resolved: Arc::clone(resolved),
                    kind: if degraded_upfront {
                        SchedulerKind::Ds
                    } else {
                        resolved.kind
                    },
                    degraded: degraded_upfront,
                    cancel,
                    guard,
                    leader: token,
                });
                match ctx.queue.try_push(job) {
                    Ok(()) => push_waiting(conn, started),
                    Err((job, closed)) => {
                        let Job { guard, .. } = *job;
                        let _ = guard.abandon();
                        if closed {
                            ctx.counters.errors.incr();
                            self.respond_failed(
                                conn,
                                started,
                                ErrorCode::Shutdown,
                                "server is draining; no new computations admitted",
                                "schedule",
                                Some(entry_key),
                            );
                        } else {
                            ctx.counters.rejected.incr();
                            self.respond_failed(
                                conn,
                                started,
                                ErrorCode::Overloaded,
                                "overloaded: admission queue full",
                                "schedule",
                                Some(entry_key),
                            );
                        }
                    }
                }
            }
        }
    }

    /// Observes the latency histogram and returns the value.
    fn observed_latency(&self, started: Instant) -> u64 {
        let latency = elapsed_us(started);
        self.ctx.counters.latency.observe(latency);
        latency
    }

    fn respond_failed(
        &mut self,
        conn: &mut Conn,
        started: Instant,
        code: ErrorCode,
        message: &str,
        verb: &str,
        key: Option<u64>,
    ) {
        let latency_us = self.observed_latency(started);
        let failed = ServeResponse::Failed(ServeError {
            code,
            message: message.to_owned(),
            key,
            verb: verb.to_owned(),
            latency_us,
        });
        self.queue_response(conn, &failed);
    }

    /// Renders a cache entry (hit or leader-completed miss) for `conn`.
    fn respond_entry(
        &mut self,
        conn: &mut Conn,
        started: Instant,
        key: u64,
        hit: bool,
        entry: &CachedResult,
    ) {
        let latency_us = self.observed_latency(started);
        self.render_entry(conn, key, hit, entry, latency_us);
    }

    fn render_entry(
        &mut self,
        conn: &mut Conn,
        key: u64,
        hit: bool,
        entry: &CachedResult,
        latency_us: u64,
    ) {
        match (&entry.result, entry.outcome_json()) {
            (Ok(_), Some(json)) => {
                if self.ctx.faults.is_none() && conn.pending.is_empty() && conn.dribble.is_empty() {
                    // Hot path: splice straight into the write buffer —
                    // no intermediate allocation, no slot bookkeeping.
                    render_scheduled(&mut conn.out, key, hit, json.as_bytes(), latency_us);
                } else {
                    let mut bytes = Vec::with_capacity(json.len() + 160);
                    render_scheduled(&mut bytes, key, hit, json.as_bytes(), latency_us);
                    self.queue_bytes(conn, bytes);
                }
            }
            (Ok(outcome), None) => {
                // Unreachable in practice (successes pre-serialize),
                // but render correctly if an entry lacks its JSON.
                let response = ServeResponse::Scheduled(Scheduled {
                    key,
                    cache_hit: hit,
                    outcome: outcome.clone(),
                    latency_us,
                });
                self.queue_response(conn, &response);
            }
            (Err(err), _) => {
                self.ctx.counters.errors.incr();
                let failed = ServeResponse::Failed(ServeError {
                    code: err.code,
                    message: err.message.clone(),
                    key: Some(key),
                    verb: "schedule".to_owned(),
                    latency_us,
                });
                self.queue_response(conn, &failed);
            }
        }
    }

    fn queue_response(&mut self, conn: &mut Conn, response: &ServeResponse) {
        let mut bytes = response.encode().into_bytes();
        bytes.push(b'\n');
        self.queue_bytes(conn, bytes);
    }

    /// Appends a rendered response respecting the per-connection FIFO
    /// (and write-fault machinery when a fault plan is attached).
    fn queue_bytes(&mut self, conn: &mut Conn, bytes: Vec<u8>) {
        if self.ctx.faults.is_none() && conn.pending.is_empty() && conn.dribble.is_empty() {
            conn.out.extend_from_slice(&bytes);
            return;
        }
        conn.pending.push_back(PendingSlot {
            slot: conn.next_slot,
            started: Instant::now(),
            state: SlotState::Done(bytes),
        });
        conn.next_slot = conn.next_slot.wrapping_add(1);
        self.pump(conn);
    }

    /// Moves consecutive completed responses from the FIFO into the
    /// write buffer, applying per-response write faults in response
    /// order.
    fn pump(&mut self, conn: &mut Conn) {
        if !conn.dribble.is_empty() || conn.close_after_flush {
            return;
        }
        while matches!(
            conn.pending.front(),
            Some(PendingSlot {
                state: SlotState::Done(_),
                ..
            })
        ) {
            let slot = conn.pending.pop_front().expect("checked front");
            let SlotState::Done(bytes) = slot.state else {
                unreachable!("matched Done above");
            };
            match self.ctx.fault(Seam::ServeWrite) {
                Some(Fault::TruncateWrite) => {
                    // Mid-frame disconnect: half the frame, then the
                    // connection closes — the client sees a short read
                    // with no terminating newline.
                    conn.out.extend_from_slice(&bytes[..bytes.len() / 2]);
                    conn.pending.clear();
                    conn.dribble.clear();
                    conn.read_done = true;
                    conn.close_after_flush = true;
                    return;
                }
                Some(Fault::SlowWrite) => {
                    // Slow-loris writer: dribble the frame out in eight
                    // timer-delayed chunks. The frame still completes,
                    // so a patient client succeeds without a retry.
                    let piece = bytes.len().div_ceil(8).max(1);
                    for chunk in bytes.chunks(piece) {
                        conn.dribble.push_back(chunk.to_vec());
                    }
                    let at = Instant::now() + self.ctx.fault_delay;
                    self.schedule_timer(at, TimerEvent::Dribble { gen: conn.gen });
                    return;
                }
                Some(_) | None => conn.out.extend_from_slice(&bytes),
            }
        }
    }

    fn schedule_timer(&mut self, at: Instant, event: TimerEvent) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.push(Reverse(TimerEntry { at, seq, event }));
    }

    fn fire_due_timers(&mut self) {
        let now = Instant::now();
        while self
            .timers
            .peek()
            .is_some_and(|Reverse(next)| next.at <= now)
        {
            let Reverse(entry) = self.timers.pop().expect("peeked");
            match entry.event {
                TimerEvent::WaiterDeadline { token, key } => {
                    if self.ctx.cache.cancel_wait(key, token) {
                        self.ctx.counters.deadline_misses.incr();
                        self.deliver(Reply {
                            token,
                            payload: ReplyPayload::Error {
                                code: ErrorCode::Deadline,
                                message: Arc::from("run abandoned: deadline exceeded"),
                                key,
                                count_miss: false,
                                count_error: false,
                            },
                        });
                    }
                }
                TimerEvent::Dribble { gen } => {
                    let Some(&idx) = self.by_gen.get(&gen) else {
                        continue;
                    };
                    let Some(mut conn) = self.conns[idx].take() else {
                        continue;
                    };
                    if let Some(chunk) = conn.dribble.pop_front() {
                        conn.out.extend_from_slice(&chunk);
                    }
                    if conn.dribble.is_empty() {
                        self.pump(&mut conn);
                    } else {
                        let at = Instant::now() + self.ctx.fault_delay;
                        self.schedule_timer(at, TimerEvent::Dribble { gen });
                    }
                    self.finish(idx, conn);
                }
            }
        }
    }

    /// Routes one worker completion to its parked request slot.
    fn deliver(&mut self, reply: Reply) {
        let gen = token_gen(reply.token);
        let Some(&idx) = self.by_gen.get(&gen) else {
            return; // connection already closed — drop the reply
        };
        let Some(mut conn) = self.conns[idx].take() else {
            return;
        };
        let slot_id = token_slot(reply.token);
        let pos = conn
            .pending
            .iter()
            .position(|s| s.slot == slot_id && matches!(s.state, SlotState::Waiting));
        if let Some(pos) = pos {
            let started = conn.pending[pos].started;
            let latency_us = self.observed_latency(started);
            let mut bytes = Vec::new();
            match reply.payload {
                ReplyPayload::Entry { key, hit, entry } => {
                    if hit {
                        self.ctx.counters.hits.incr();
                    } else {
                        self.ctx.counters.misses.incr();
                    }
                    self.render_slot(&mut bytes, key, hit, &entry, latency_us);
                }
                ReplyPayload::Error {
                    code,
                    message,
                    key,
                    count_miss,
                    count_error,
                } => {
                    if count_miss {
                        self.ctx.counters.misses.incr();
                    }
                    if count_error {
                        self.ctx.counters.errors.incr();
                    }
                    let failed = ServeResponse::Failed(ServeError {
                        code,
                        message: message.as_ref().to_owned(),
                        key: Some(key),
                        verb: "schedule".to_owned(),
                        latency_us,
                    });
                    bytes = failed.encode().into_bytes();
                    bytes.push(b'\n');
                }
            }
            conn.pending[pos].state = SlotState::Done(bytes);
            self.pump(&mut conn);
        }
        self.finish(idx, conn);
    }

    /// Renders an entry into `bytes` for a parked slot (always the
    /// slot-buffer path — ordering is enforced by the FIFO).
    fn render_slot(
        &mut self,
        bytes: &mut Vec<u8>,
        key: u64,
        hit: bool,
        entry: &CachedResult,
        latency_us: u64,
    ) {
        match (&entry.result, entry.outcome_json()) {
            (Ok(_), Some(json)) => render_scheduled(bytes, key, hit, json.as_bytes(), latency_us),
            (Ok(outcome), None) => {
                let response = ServeResponse::Scheduled(Scheduled {
                    key,
                    cache_hit: hit,
                    outcome: outcome.clone(),
                    latency_us,
                });
                *bytes = response.encode().into_bytes();
                bytes.push(b'\n');
            }
            (Err(err), _) => {
                self.ctx.counters.errors.incr();
                let failed = ServeResponse::Failed(ServeError {
                    code: err.code,
                    message: err.message.clone(),
                    key: Some(key),
                    verb: "schedule".to_owned(),
                    latency_us,
                });
                *bytes = failed.encode().into_bytes();
                bytes.push(b'\n');
            }
        }
    }

    /// Flushes what the socket accepts, then either parks the
    /// connection back in the slab or closes it.
    fn finish(&mut self, idx: usize, mut conn: Conn) {
        flush(&mut conn);
        let flushed = conn.out_pos >= conn.out.len();
        let done = conn.broken
            || (flushed
                && conn.dribble.is_empty()
                && (conn.close_after_flush || (conn.read_done && conn.pending.is_empty())));
        if done {
            self.by_gen.remove(&conn.gen);
            self.free.push(idx);
            // Dropping `conn` closes the socket.
        } else {
            self.conns[idx] = Some(conn);
        }
    }
}

/// Parks the request's response position in the connection FIFO.
fn push_waiting(conn: &mut Conn, started: Instant) {
    conn.pending.push_back(PendingSlot {
        slot: conn.next_slot,
        started,
        state: SlotState::Waiting,
    });
    conn.next_slot = conn.next_slot.wrapping_add(1);
}

/// Writes as much of the pending output as the socket accepts.
fn flush(conn: &mut Conn) {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.broken = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.broken = true;
                return;
            }
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
}

/// Condenses a pipeline run into the wire outcome.
fn outcome_of(run: &PipelineRun, app: &str, kind: SchedulerKind, degraded: bool) -> Outcome {
    let plan = run.plan();
    Outcome {
        app: app.to_owned(),
        scheduler: kind.name().to_owned(),
        clusters: run.schedule().len() as u64,
        rf: plan.rf(),
        dt_avoided_words: plan.dt_avoided_per_iter().get(),
        data_words: plan.total_data_words().get(),
        context_words: plan.total_context_words(),
        total_cycles: run.report().total().get(),
        degraded,
    }
}

/// Runs one pipeline under the supervisor's `catch_unwind`. `faulted`
/// attaches the server's fault plan (the degraded fallback runs clean
/// so it is guaranteed to complete whenever scheduling is feasible).
fn supervised_run(
    ctx: &Ctx,
    resolved: &Resolved,
    kind: SchedulerKind,
    cancel: Option<CancelToken>,
    faulted: bool,
) -> Result<Result<PipelineRun, McdsError>, ()> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if faulted && matches!(ctx.fault(Seam::WorkerRun), Some(Fault::WorkerPanic)) {
            panic!("injected worker panic");
        }
        let mut pipeline = Pipeline::new(resolved.app.clone())
            .arch(resolved.arch)
            .scheduler(kind)
            .metrics(Arc::clone(&ctx.metrics));
        if let Some(token) = cancel {
            pipeline = pipeline.cancellation(token);
        }
        if faulted {
            if let Some(plan) = &ctx.faults {
                // Scoped: this run's fault stream indexes per-request
                // counters salted by (key, attempt), so chaos replay is
                // a pure function of the request — independent of how
                // many allocation calls other requests made first.
                pipeline = pipeline.faults_scoped(plan, resolved.key);
            }
        }
        if let Some(sched) = &resolved.sched {
            pipeline = pipeline.schedule(sched.clone());
        }
        // Analysis memoization by structure key: arch-only variants of
        // an already-analyzed workload skip straight to data scheduling
        // + allocation. The single-flight guard blocks concurrent
        // preparers of the same structure; a failed preparation drops
        // the guard, wakes the waiters, and surfaces the (deterministic)
        // error through the normal outcome path.
        match ctx.cache.analysis_lookup(resolved.structure_key) {
            AnalysisLookup::Hit(prepared) => {
                ctx.counters.analysis_hits.incr();
                pipeline.run_prepared(&prepared)
            }
            AnalysisLookup::Lead(lead) => {
                ctx.counters.analysis_misses.incr();
                match pipeline.prepare() {
                    Ok(prepared) => {
                        let prepared = Arc::new(prepared);
                        lead.fulfill(Arc::clone(&prepared));
                        pipeline.run_prepared(&prepared)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }))
    .map_err(|_| ())
}

/// Replies answering the leader (miss) and every waiter (hit) with one
/// shared cache entry.
fn entry_replies(key: u64, leader: Token, waiters: Vec<Token>, entry: &CachedResult) -> Vec<Reply> {
    let mut replies = Vec::with_capacity(1 + waiters.len());
    replies.push(Reply {
        token: leader,
        payload: ReplyPayload::Entry {
            key,
            hit: false,
            entry: Arc::clone(entry),
        },
    });
    for token in waiters {
        replies.push(Reply {
            token,
            payload: ReplyPayload::Entry {
                key,
                hit: true,
                entry: Arc::clone(entry),
            },
        });
    }
    replies
}

/// Replies failing the leader (counted as the miss) and every waiter
/// with the same transient error.
fn fail_replies(
    key: u64,
    leader: Token,
    waiters: Vec<Token>,
    code: ErrorCode,
    message: &Arc<str>,
) -> Vec<Reply> {
    let mut replies = Vec::with_capacity(1 + waiters.len());
    replies.push(Reply {
        token: leader,
        payload: ReplyPayload::Error {
            code,
            message: Arc::clone(message),
            key,
            count_miss: true,
            count_error: true,
        },
    });
    for token in waiters {
        replies.push(Reply {
            token,
            payload: ReplyPayload::Error {
                code,
                message: Arc::clone(message),
                key,
                count_miss: false,
                count_error: true,
            },
        });
    }
    replies
}

/// One worker under its supervisor: pops admitted jobs and computes
/// them through the pipeline. Deterministic results (success or
/// scheduling error) are published to the cache; abandoned and faulted
/// runs are not. A panicking run (injected or real) is contained by
/// `catch_unwind`: the worker recycles itself for the next job,
/// `serve.worker_restarts` counts the recycle, and the leader plus any
/// parked waiters get a typed retryable error instead of hanging.
fn worker_loop(ctx: &Ctx) {
    while let Some(job) = ctx.queue.pop() {
        let Job {
            resolved,
            kind,
            degraded,
            cancel,
            guard,
            leader,
        } = *job;
        let flight_key = guard.key();
        let caught = supervised_run(ctx, &resolved, kind, cancel, !degraded);
        let replies = match caught {
            Err(()) => {
                // Poisoned worker: recycle in place, never cache.
                ctx.counters.worker_restarts.incr();
                let waiters = guard.abandon();
                let message = Arc::from("worker panicked; the request is retryable");
                fail_replies(flight_key, leader, waiters, ErrorCode::Faulted, &message)
            }
            Ok(Ok(run)) => {
                if degraded {
                    ctx.counters.degraded.incr();
                }
                let entry = CachedEntry::ok(outcome_of(&run, resolved.app.name(), kind, degraded));
                let (shared, waiters) = guard.fulfill(entry);
                entry_replies(flight_key, leader, waiters, &shared)
            }
            Ok(Err(McdsError::Cancelled(reason))) => {
                // Not a pure function of the request — never cached.
                ctx.counters.deadline_misses.incr();
                let message: Arc<str> = Arc::from(format!("run abandoned: {reason}").as_str());
                let fallback = if ctx.degrade && kind == SchedulerKind::Cds {
                    // Fall back to the cheaper within-cluster-only
                    // scheduler, clean (no faults, no deadline), and
                    // serve + cache it under the *degraded* key. The
                    // primary key stays uncomputed so a later request
                    // with a generous deadline gets the full CDS.
                    supervised_run(ctx, &resolved, SchedulerKind::Ds, None, false).ok()
                } else {
                    None
                };
                if let Some(Ok(run)) = fallback {
                    ctx.counters.degraded.incr();
                    let dkey = degraded_key(resolved.key);
                    let outcome = outcome_of(&run, resolved.app.name(), SchedulerKind::Ds, true);
                    let (shared, dwaiters) = ctx.cache.publish(dkey, CachedEntry::ok(outcome));
                    let pwaiters = guard.abandon();
                    let mut replies = entry_replies(dkey, leader, dwaiters, &shared);
                    for token in pwaiters {
                        replies.push(Reply {
                            token,
                            payload: ReplyPayload::Error {
                                code: ErrorCode::Deadline,
                                message: Arc::clone(&message),
                                key: flight_key,
                                count_miss: false,
                                count_error: true,
                            },
                        });
                    }
                    replies
                } else {
                    // The fallback failed too (infeasible, disabled, or
                    // it panicked): plain abandon.
                    let waiters = guard.abandon();
                    fail_replies(flight_key, leader, waiters, ErrorCode::Deadline, &message)
                }
            }
            Ok(Err(e @ McdsError::Faulted(_))) => {
                // Injected fault: transient — never cached, retryable.
                let waiters = guard.abandon();
                let message = Arc::from(e.to_string().as_str());
                fail_replies(flight_key, leader, waiters, ErrorCode::Faulted, &message)
            }
            Ok(Err(e)) => {
                // Scheduling errors are deterministic → cacheable.
                let entry = CachedEntry::err(ErrorCode::BadRequest, e.to_string());
                let (shared, waiters) = guard.fulfill(entry);
                entry_replies(flight_key, leader, waiters, &shared)
            }
        };
        ctx.complete(replies);
    }
}

/// Resolves a `schedule` request into pipeline inputs plus its
/// canonical key.
fn resolve(spec: ScheduleSpec) -> Result<Resolved, String> {
    let kind: SchedulerKind = spec
        .scheduler
        .as_deref()
        .unwrap_or("cds")
        .parse()
        .map_err(|e: McdsError| e.to_string())?;
    let arch = match spec.arch {
        Some(arch) => arch,
        None => ArchParams::m1()
            .to_builder()
            .fb_set_words(Words::kilo(spec.fb_kw.unwrap_or(1).max(1)))
            .build(),
    };
    let (app, sched) = match (spec.app, spec.workload.as_deref()) {
        (Some(_), Some(_)) => return Err("`app` and `workload` are mutually exclusive".to_owned()),
        (None, None) => return Err("schedule needs `app` or `workload`".to_owned()),
        (Some(app), None) => {
            app.validate().map_err(|e| format!("invalid app: {e}"))?;
            (app, None)
        }
        (None, Some(name)) => {
            let iterations = spec.iterations.unwrap_or(16);
            let (app, sched) = mcds_workloads::mix::by_name(name, iterations)
                .ok_or_else(|| format!("unknown workload `{name}` (and iterations must be > 0)"))?;
            (app, Some(sched))
        }
    };
    let skey = structure_key(&app, sched.as_ref());
    let key = compose_key(skey, arch_key(&arch, kind, &SchedulerConfig::default()));
    Ok(Resolved {
        app,
        sched,
        arch,
        kind,
        key,
        structure_key: skey,
        deadline_ms: spec.deadline_ms,
    })
}
