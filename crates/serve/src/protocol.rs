//! The versioned wire protocol: newline-delimited JSON, one object per
//! line, every frame carrying `"v":1`.
//!
//! The typed surface is two `#[non_exhaustive]` enums —
//! [`ServeRequest`] and [`ServeResponse`] — plus the machine-readable
//! [`ErrorCode`] that replaces string matching on error messages. On
//! the wire each request is one flat JSON object:
//!
//! ```text
//! {"v":1,"verb":"schedule","workload":"e1","iterations":16,"scheduler":"cds","deadline_ms":500,"class":"priority"}
//! {"v":1,"verb":"ping"}
//! {"v":1,"verb":"stats"}
//! {"v":1,"verb":"shutdown"}
//! ```
//!
//! and each response one flat object with `status` (`ok` / `error` /
//! `rejected`), the echoed verb, and — on failures — a stable `code`
//! string from [`ErrorCode`]. See `DESIGN.md` §12 for the full wire
//! table.
//!
//! ## Versioning and the compat window
//!
//! * A request whose `v` field is a number other than `1` is answered
//!   with a typed [`ErrorCode::UnsupportedVersion`] error — the
//!   connection stays open.
//! * A request whose `v` field is missing (or `null`) is a **legacy
//!   frame**: the un-versioned PR-3 protocol. Legacy frames are
//!   accepted for one release behind [`decode_request`]'s compat shim
//!   (they decode exactly like v1 frames) and are counted under
//!   `serve.legacy_frames`. **Deprecated:** the shim will be removed in
//!   the release after this one; clients should send `"v":1`.
//! * A `v` of any other JSON type is malformed input
//!   ([`ErrorCode::BadRequest`]) — never a panic, never a dropped
//!   connection.
//!
//! Responses are always emitted in the v1 shape, which is a strict
//! superset of the legacy response (legacy clients ignore the unknown
//! `v` and `code` fields).

use std::fmt;

use serde::{Deserialize, Serialize, Value};

use mcds_model::{Application, ArchParams};

/// Why a received frame was rejected before parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// More bytes buffered without a newline than the configured
    /// maximum — the connection must be closed, since the frame
    /// boundary is lost.
    Oversized {
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// The frame is not valid UTF-8. The frame is consumed; the
    /// connection may continue at the next newline.
    InvalidUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit without a newline")
            }
            FrameError::InvalidUtf8 => write!(f, "frame is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Once this many consumed bytes accumulate at the front of the buffer
/// it is compacted on the next [`FrameBuffer::extend`].
const COMPACT_AT: usize = 32 * 1024;

/// A bounded accumulator for newline-delimited frames with zero-copy
/// scanning: [`next_frame`](Self::next_frame) returns a `&str` view
/// into the reused buffer instead of allocating a `String` per frame.
///
/// Consumed bytes are tracked by a head offset and reclaimed lazily
/// ([`extend`](Self::extend) compacts when the whole buffer is consumed
/// or the dead prefix grows past a threshold), so a connection pumping
/// thousands of pipelined frames reuses one allocation.
///
/// Fixes the OOM-by-long-line hazard of naive line reading: a peer
/// that streams bytes without ever sending `\n` is cut off with a
/// typed [`FrameError::Oversized`] once `max_bytes` is buffered,
/// instead of growing the buffer without bound. Frames that are not
/// valid UTF-8 are rejected (typed, recoverable) rather than lossily
/// transcoded.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    head: usize,
    max_bytes: usize,
}

impl FrameBuffer {
    /// An empty buffer that holds at most `max_bytes` of an unfinished
    /// frame (clamped to at least 1).
    #[must_use]
    pub fn new(max_bytes: usize) -> FrameBuffer {
        FrameBuffer {
            buf: Vec::new(),
            head: 0,
            max_bytes: max_bytes.max(1),
        }
    }

    /// Appends received bytes, compacting the consumed prefix first
    /// when it is large (or when the buffer is fully consumed, which
    /// is free).
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.head > 0 && (self.head == self.buf.len() || self.head >= COMPACT_AT) {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered (for tests/diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// `true` when nothing unconsumed is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pops the next complete frame (one line, newline and optional
    /// `\r` stripped) as a borrowed view into the buffer. The view is
    /// valid until the next `extend`/`next_frame` call.
    ///
    /// Returns `Ok(None)` when no complete frame is buffered yet.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] when the unfinished frame already
    /// exceeds the limit (the caller must drop the connection);
    /// [`FrameError::InvalidUtf8`] when the completed frame is not
    /// UTF-8 (the frame is consumed — the caller may answer with a
    /// typed error and keep reading).
    pub fn next_frame(&mut self) -> Result<Option<&str>, FrameError> {
        let start = self.head;
        match self.buf[start..].iter().position(|&b| b == b'\n') {
            // The limit applies to the *line*, not the delivery: a
            // too-long line whose newline arrived in the same read is
            // just as oversized as one still waiting for its newline,
            // so the decision cannot depend on TCP segmentation.
            Some(rel) if rel > self.max_bytes => Err(FrameError::Oversized {
                limit: self.max_bytes,
            }),
            Some(rel) => {
                let mut end = start + rel;
                self.head = end + 1;
                if end > start && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                match std::str::from_utf8(&self.buf[start..end]) {
                    Ok(text) => Ok(Some(text)),
                    Err(_) => Err(FrameError::InvalidUtf8),
                }
            }
            None if self.len() > self.max_bytes => Err(FrameError::Oversized {
                limit: self.max_bytes,
            }),
            None => Ok(None),
        }
    }
}

/// Machine-readable failure classification, carried on the wire as the
/// stable snake_case `code` field of every non-`ok` response.
///
/// Replaces string matching on error messages: clients branch on the
/// code (and [`retryable`](Self::retryable)), messages stay
/// human-oriented diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The bounded admission queue was full — retry after backoff.
    Overloaded,
    /// The request's deadline expired (the run was abandoned, or the
    /// caller timed out waiting on another request's computation).
    /// Retrying with a longer deadline may succeed.
    Deadline,
    /// A transient internal failure: an injected fault fired or a
    /// worker panicked and was recycled. Never cached; retryable.
    Faulted,
    /// The request itself is invalid or deterministically
    /// unsatisfiable (malformed JSON, unknown verb or workload,
    /// infeasible schedule). Retrying the identical request fails
    /// identically.
    BadRequest,
    /// The request frame exceeded the server's size limit; the
    /// connection is closed after this response.
    Oversized,
    /// The server is draining after a `shutdown` request and no longer
    /// admits new computations.
    Shutdown,
    /// The request's `v` field named a protocol version this server
    /// does not speak.
    UnsupportedVersion,
}

impl ErrorCode {
    /// The stable wire string for this code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Faulted => "faulted",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Oversized => "oversized",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::UnsupportedVersion => "unsupported_version",
        }
    }

    /// Parses a wire string; `None` for codes this build does not know
    /// (the enum is `#[non_exhaustive]` — treat unknown codes as
    /// non-retryable).
    #[must_use]
    pub fn from_wire(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "overloaded" => ErrorCode::Overloaded,
            "deadline" => ErrorCode::Deadline,
            "faulted" => ErrorCode::Faulted,
            "bad_request" => ErrorCode::BadRequest,
            "oversized" => ErrorCode::Oversized,
            "shutdown" => ErrorCode::Shutdown,
            "unsupported_version" => ErrorCode::UnsupportedVersion,
            _ => return None,
        })
    }

    /// `true` when retrying the same request may succeed (transient
    /// failures: overload, expired deadlines, injected faults/worker
    /// crashes). Deterministic failures — bad requests, oversized
    /// frames, version mismatches — and shutdown are not retryable.
    #[must_use]
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded | ErrorCode::Deadline | ErrorCode::Faulted
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The admission class of a `schedule` request: which QoS lane the job
/// queues in. Carried on the wire as the optional `class` field of the
/// v1 envelope.
///
/// Lane resolution is deliberately forgiving: a missing `class`, a
/// legacy (pre-v1) frame, and an *unknown* class string all resolve to
/// [`QosClass::Standard`] — an old client must never be rejected for
/// not knowing about lanes, and a newer client's future class name
/// must degrade to standard service rather than an error. Only a
/// wrong-*typed* `class` field (a number, an object) is malformed,
/// answered with [`ErrorCode::BadRequest`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum QosClass {
    /// Latency-sensitive traffic: dequeued before everything else,
    /// shed last.
    Priority,
    /// The default lane; every request without an explicit class.
    #[default]
    Standard,
    /// Throughput traffic: dequeued only when the other lanes are
    /// empty, shed first under overload.
    Batch,
}

impl QosClass {
    /// Every class, highest priority first (dequeue order; shed order
    /// is the reverse).
    pub const ALL: [QosClass; 3] = [QosClass::Priority, QosClass::Standard, QosClass::Batch];

    /// The stable wire string for this class.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            QosClass::Priority => "priority",
            QosClass::Standard => "standard",
            QosClass::Batch => "batch",
        }
    }

    /// Parses a wire string; `None` for class names this build does
    /// not know.
    #[must_use]
    pub fn from_wire(s: &str) -> Option<QosClass> {
        Some(match s {
            "priority" => QosClass::Priority,
            "standard" => QosClass::Standard,
            "batch" => QosClass::Batch,
            _ => return None,
        })
    }

    /// Parses a wire string, resolving unknown class names to
    /// [`QosClass::Standard`] (the compat rule above).
    #[must_use]
    pub fn from_wire_lossy(s: &str) -> QosClass {
        QosClass::from_wire(s).unwrap_or_default()
    }

    /// Lane index: 0 = priority, 1 = standard, 2 = batch.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            QosClass::Priority => 0,
            QosClass::Standard => 1,
            QosClass::Batch => 2,
        }
    }
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The options of a `schedule` request (everything but the verb).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScheduleSpec {
    /// Catalog workload name (`e1`, `e2`, `e3`, `mpeg`, `atr-sld`,
    /// `atr-fi`). Mutually exclusive with `app`.
    pub workload: Option<String>,
    /// Streaming iterations for a catalog workload (default 16).
    pub iterations: Option<u64>,
    /// Inline application (validated server-side before scheduling).
    pub app: Option<Application>,
    /// Full inline architecture; overrides `fb_kw`.
    pub arch: Option<ArchParams>,
    /// Frame Buffer set size in kilowords over the M1 baseline
    /// (default 1).
    pub fb_kw: Option<u64>,
    /// Scheduler name (`basic`, `ds`, `cds`, `search`,
    /// `search:<beam>[:<max-expansions>]`; default `cds`).
    pub scheduler: Option<String>,
    /// Per-request deadline in milliseconds; the pipeline abandons the
    /// run at the next stage boundary once it expires.
    pub deadline_ms: Option<u64>,
    /// Admission class ([`QosClass`]); absent means standard.
    pub class: Option<QosClass>,
}

impl ScheduleSpec {
    /// A spec for a catalog workload with every option defaulted.
    #[must_use]
    pub fn workload(name: &str) -> Self {
        ScheduleSpec {
            workload: Some(name.to_owned()),
            ..ScheduleSpec::default()
        }
    }

    /// The lane this request queues in: the explicit class, or
    /// standard.
    #[must_use]
    pub fn qos(&self) -> QosClass {
        self.class.unwrap_or_default()
    }
}

/// One typed request — the v1 protocol surface.
///
/// `Schedule` carries the full spec inline: requests are decoded once
/// per frame and consumed immediately, so boxing the large variant
/// would buy nothing but an allocation on the hot path.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
#[allow(clippy::large_enum_variant)]
pub enum ServeRequest {
    /// Compute (or fetch from cache) a scheduling outcome.
    Schedule(ScheduleSpec),
    /// Liveness probe.
    Ping,
    /// Metrics snapshot.
    Stats,
    /// Begin a graceful drain.
    Shutdown,
}

/// Which protocol revision a decoded request frame used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireVersion {
    /// The current versioned envelope (`"v":1`).
    V1,
    /// An un-versioned PR-3 frame accepted through the compat shim
    /// (deprecated; the shim lasts one release).
    Legacy,
}

/// Why a request line could not be decoded into a [`ServeRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RequestError {
    /// The frame named a protocol version this server does not speak.
    UnsupportedVersion {
        /// The version the peer asked for.
        got: u64,
    },
    /// Malformed JSON, a wrong-typed `v` field, an unknown verb, or a
    /// frame violating the schema. Deterministic — never retryable.
    Malformed(String),
}

impl RequestError {
    /// The [`ErrorCode`] a server answers this decode failure with.
    #[must_use]
    pub fn code(&self) -> ErrorCode {
        match self {
            RequestError::UnsupportedVersion { .. } => ErrorCode::UnsupportedVersion,
            RequestError::Malformed(_) => ErrorCode::BadRequest,
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this server speaks v1)"
                )
            }
            RequestError::Malformed(msg) => write!(f, "malformed request: {msg}"),
        }
    }
}

impl std::error::Error for RequestError {}

/// The flat v1 request object as it appears on the wire. Field order
/// is the wire field order.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RequestFrame {
    v: Option<u64>,
    verb: String,
    workload: Option<String>,
    iterations: Option<u64>,
    app: Option<Application>,
    arch: Option<ArchParams>,
    fb_kw: Option<u64>,
    scheduler: Option<String>,
    deadline_ms: Option<u64>,
    class: Option<String>,
}

impl ServeRequest {
    fn verb(&self) -> &'static str {
        match self {
            ServeRequest::Schedule(_) => "schedule",
            ServeRequest::Ping => "ping",
            ServeRequest::Stats => "stats",
            ServeRequest::Shutdown => "shutdown",
        }
    }

    fn to_frame(&self, v: Option<u64>) -> RequestFrame {
        let spec = match self {
            ServeRequest::Schedule(spec) => spec.clone(),
            _ => ScheduleSpec::default(),
        };
        RequestFrame {
            v,
            verb: self.verb().to_owned(),
            workload: spec.workload,
            iterations: spec.iterations,
            app: spec.app,
            arch: spec.arch,
            fb_kw: spec.fb_kw,
            scheduler: spec.scheduler,
            deadline_ms: spec.deadline_ms,
            class: spec.class.map(|c| c.as_str().to_owned()),
        }
    }

    /// Serializes this request as one v1 wire line (no trailing
    /// newline).
    #[must_use]
    pub fn encode(&self) -> String {
        serde_json::to_string(&self.to_frame(Some(1))).expect("request frames serialize")
    }

    /// Serializes this request in the deprecated un-versioned legacy
    /// shape (`v` emitted as `null`, which the shim treats as absent).
    /// Exists for the compat-window tests; new code sends
    /// [`encode`](Self::encode).
    #[must_use]
    pub fn encode_legacy(&self) -> String {
        serde_json::to_string(&self.to_frame(None)).expect("request frames serialize")
    }
}

/// Decodes one request line: version sniff first, then the typed
/// frame. Legacy (un-versioned) frames pass through the compat shim
/// and decode identically to v1, tagged [`WireVersion::Legacy`].
///
/// # Errors
///
/// [`RequestError::UnsupportedVersion`] for a numeric `v` other than 1;
/// [`RequestError::Malformed`] for anything else that does not decode
/// (including wrong-typed `v` fields — never a panic).
pub fn decode_request(line: &str) -> Result<(ServeRequest, WireVersion), RequestError> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| RequestError::Malformed(e.to_string()))?;
    let version = match value.get("v") {
        None | Some(Value::Null) => WireVersion::Legacy,
        Some(Value::UInt(1)) => WireVersion::V1,
        Some(Value::UInt(n)) => return Err(RequestError::UnsupportedVersion { got: *n }),
        Some(_) => {
            return Err(RequestError::Malformed(
                "the `v` field must be an unsigned integer".to_owned(),
            ))
        }
    };
    let frame =
        RequestFrame::from_value(&value).map_err(|e| RequestError::Malformed(e.to_string()))?;
    let request = match frame.verb.as_str() {
        "ping" => ServeRequest::Ping,
        "stats" => ServeRequest::Stats,
        "shutdown" => ServeRequest::Shutdown,
        "schedule" => ServeRequest::Schedule(ScheduleSpec {
            workload: frame.workload,
            iterations: frame.iterations,
            app: frame.app,
            arch: frame.arch,
            fb_kw: frame.fb_kw,
            scheduler: frame.scheduler,
            deadline_ms: frame.deadline_ms,
            // Unknown class names resolve to the standard lane; only a
            // wrong-typed field is an error (caught by `from_value`).
            class: frame.class.as_deref().map(QosClass::from_wire_lossy),
        }),
        other => {
            return Err(RequestError::Malformed(format!(
                "unknown verb `{other}` (expected schedule, ping, stats, shutdown)"
            )))
        }
    };
    Ok((request, version))
}

/// The condensed result of one scheduling run — everything the
/// serving benchmark compares, nothing architecture-internal. Identical
/// requests must serialize to byte-identical outcomes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outcome {
    /// Application name.
    pub app: String,
    /// Scheduler that produced the plan.
    pub scheduler: String,
    /// Number of clusters scheduled.
    pub clusters: u64,
    /// Chosen reuse factor.
    pub rf: u64,
    /// Data transfers avoided per iteration (words) by retention.
    pub dt_avoided_words: u64,
    /// Total data words moved by the plan.
    pub data_words: u64,
    /// Total context words loaded.
    pub context_words: u64,
    /// Simulated execution time in cycles.
    pub total_cycles: u64,
    /// `true` when this outcome came from the degraded fallback path
    /// (within-cluster-only scheduler instead of the full CDS). Cached
    /// under a separate key so it never masks the full-quality result.
    #[serde(default)]
    pub degraded: bool,
}

/// One `stats` counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatEntry {
    /// Counter name (e.g. `serve.cache.hits`).
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// A successful `schedule` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheduled {
    /// Canonical request key the outcome is cached under.
    pub key: u64,
    /// `true` when the outcome came from the cache (including
    /// single-flight waiters answered by another request's
    /// computation).
    pub cache_hit: bool,
    /// The scheduling outcome.
    pub outcome: Outcome,
    /// Server-side latency of this request in microseconds.
    pub latency_us: u64,
}

/// A `stats` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReply {
    /// The metrics snapshot, sorted by name.
    pub entries: Vec<StatEntry>,
    /// Server-side latency of this request in microseconds.
    pub latency_us: u64,
}

/// A typed failure reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    /// Machine-readable classification.
    pub code: ErrorCode,
    /// Human-oriented diagnostic (never for branching).
    pub message: String,
    /// The request key, when one was resolved before failing.
    pub key: Option<u64>,
    /// Echoed verb (`schedule`, `frame`, `unknown`, …).
    pub verb: String,
    /// Server-side latency of this request in microseconds.
    pub latency_us: u64,
}

impl ServeError {
    /// A failure reply for the given code, echoing `schedule`.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ServeError {
            code,
            message: message.into(),
            key: None,
            verb: "schedule".to_owned(),
            latency_us: 0,
        }
    }

    /// Same failure, tagged with the resolved request key.
    #[must_use]
    pub fn with_key(mut self, key: u64) -> Self {
        self.key = Some(key);
        self
    }

    /// Same failure, echoing a different verb.
    #[must_use]
    pub fn with_verb(mut self, verb: &str) -> Self {
        self.verb = verb.to_owned();
        self
    }

    /// Shorthand for `self.code.retryable()`.
    #[must_use]
    pub fn retryable(&self) -> bool {
        self.code.retryable()
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServeError {}

/// One typed response — the v1 protocol surface.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeResponse {
    /// A successful `schedule`.
    Scheduled(Scheduled),
    /// A successful `ping`.
    Pong {
        /// Server-side latency in microseconds.
        latency_us: u64,
    },
    /// A successful `stats`.
    Stats(StatsReply),
    /// The acknowledgement of a `shutdown` — the server is draining.
    ShuttingDown {
        /// Server-side latency in microseconds.
        latency_us: u64,
    },
    /// Any failure, classified by [`ErrorCode`].
    Failed(ServeError),
}

/// Why a response line could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResponseError {
    /// The line is not a well-formed v1 (or legacy-superset) response.
    Malformed(String),
}

impl fmt::Display for ResponseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResponseError::Malformed(msg) => write!(f, "malformed response: {msg}"),
        }
    }
}

impl std::error::Error for ResponseError {}

/// The flat response object as it appears on the wire. Field order is
/// the wire field order — [`render_scheduled`] reproduces it byte for
/// byte, which a unit test pins against this derive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseFrame {
    /// Protocol version (always 1 from this server; absent from
    /// legacy-era captures).
    pub v: Option<u64>,
    /// `ok`, `error`, or `rejected` (admission queue full — kept as a
    /// distinct status for legacy clients; `code` says `overloaded`).
    pub status: String,
    /// Echo of the request verb.
    pub verb: String,
    /// Content-addressed request key as 16 hex digits.
    pub key: Option<String>,
    /// `hit` or `miss` (`schedule` only).
    pub cache: Option<String>,
    /// The scheduling outcome on success.
    pub outcome: Option<Outcome>,
    /// Stable machine-readable [`ErrorCode`] string on failures.
    pub code: Option<String>,
    /// Human-oriented diagnostic on failures.
    pub error: Option<String>,
    /// Metrics snapshot (`stats` only).
    pub stats: Option<Vec<StatEntry>>,
    /// Legacy retry hint (`code.retryable()` is authoritative).
    pub retryable: Option<bool>,
    /// Server-side latency of this request in microseconds.
    pub latency_us: u64,
}

impl ResponseFrame {
    fn bare(status: &str, verb: &str, latency_us: u64) -> Self {
        ResponseFrame {
            v: Some(1),
            status: status.to_owned(),
            verb: verb.to_owned(),
            key: None,
            cache: None,
            outcome: None,
            code: None,
            error: None,
            stats: None,
            retryable: None,
            latency_us,
        }
    }
}

impl ServeResponse {
    /// The wire frame for this response.
    #[must_use]
    pub fn to_frame(&self) -> ResponseFrame {
        match self {
            ServeResponse::Scheduled(s) => {
                let mut f = ResponseFrame::bare("ok", "schedule", s.latency_us);
                f.key = Some(format_key(s.key));
                f.cache = Some(if s.cache_hit { "hit" } else { "miss" }.to_owned());
                f.outcome = Some(s.outcome.clone());
                f
            }
            ServeResponse::Pong { latency_us } => ResponseFrame::bare("ok", "ping", *latency_us),
            ServeResponse::Stats(s) => {
                let mut f = ResponseFrame::bare("ok", "stats", s.latency_us);
                f.stats = Some(s.entries.clone());
                f
            }
            ServeResponse::ShuttingDown { latency_us } => {
                ResponseFrame::bare("ok", "shutdown", *latency_us)
            }
            ServeResponse::Failed(e) => {
                let status = if e.code == ErrorCode::Overloaded {
                    "rejected"
                } else {
                    "error"
                };
                let mut f = ResponseFrame::bare(status, &e.verb, e.latency_us);
                f.key = e.key.map(format_key);
                f.code = Some(e.code.as_str().to_owned());
                f.error = Some(e.message.clone());
                f.retryable = Some(e.code.retryable());
                f
            }
        }
    }

    /// Serializes this response as one wire line (no trailing
    /// newline).
    #[must_use]
    pub fn encode(&self) -> String {
        serde_json::to_string(&self.to_frame()).expect("response frames serialize")
    }

    /// Decodes one response line into the typed surface.
    ///
    /// # Errors
    ///
    /// [`ResponseError::Malformed`] when the line is not valid JSON or
    /// violates the response schema. Unknown `code` strings degrade
    /// gracefully (classified by the legacy `retryable` hint) — a
    /// newer server never breaks an older client's decode.
    pub fn decode(line: &str) -> Result<ServeResponse, ResponseError> {
        let frame: ResponseFrame =
            serde_json::from_str(line).map_err(|e| ResponseError::Malformed(e.to_string()))?;
        let key = match frame.key.as_deref() {
            Some(hex) => Some(
                parse_key(hex)
                    .ok_or_else(|| ResponseError::Malformed(format!("bad key `{hex}`")))?,
            ),
            None => None,
        };
        match frame.status.as_str() {
            "ok" => {
                if let Some(outcome) = frame.outcome {
                    return Ok(ServeResponse::Scheduled(Scheduled {
                        key: key.ok_or_else(|| {
                            ResponseError::Malformed("ok schedule without a key".to_owned())
                        })?,
                        cache_hit: frame.cache.as_deref() == Some("hit"),
                        outcome,
                        latency_us: frame.latency_us,
                    }));
                }
                if let Some(entries) = frame.stats {
                    return Ok(ServeResponse::Stats(StatsReply {
                        entries,
                        latency_us: frame.latency_us,
                    }));
                }
                match frame.verb.as_str() {
                    "ping" => Ok(ServeResponse::Pong {
                        latency_us: frame.latency_us,
                    }),
                    "shutdown" => Ok(ServeResponse::ShuttingDown {
                        latency_us: frame.latency_us,
                    }),
                    other => Err(ResponseError::Malformed(format!(
                        "ok response for verb `{other}` carries no payload"
                    ))),
                }
            }
            "rejected" | "error" => {
                let code = frame
                    .code
                    .as_deref()
                    .and_then(ErrorCode::from_wire)
                    .unwrap_or({
                        // Legacy (or future-coded) failure: classify by
                        // status and the retry hint.
                        if frame.status == "rejected" {
                            ErrorCode::Overloaded
                        } else if frame.retryable == Some(true) {
                            ErrorCode::Faulted
                        } else {
                            ErrorCode::BadRequest
                        }
                    });
                Ok(ServeResponse::Failed(ServeError {
                    code,
                    message: frame.error.unwrap_or_default(),
                    key,
                    verb: frame.verb,
                    latency_us: frame.latency_us,
                }))
            }
            other => Err(ResponseError::Malformed(format!(
                "unknown response status `{other}`"
            ))),
        }
    }
}

/// Renders a request key as the protocol's 16-hex-digit form.
#[must_use]
pub fn format_key(key: u64) -> String {
    format!("{key:016x}")
}

/// Parses the 16-hex-digit wire form back into a key.
#[must_use]
pub fn parse_key(hex: &str) -> Option<u64> {
    if hex.is_empty() || hex.len() > 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn push_u64(out: &mut Vec<u8>, mut n: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&digits[i..]);
}

fn push_key_hex(out: &mut Vec<u8>, key: u64) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    for shift in (0..16).rev() {
        out.push(HEX[((key >> (shift * 4)) & 0xf) as usize]);
    }
}

/// Appends a complete `ok`/`schedule` response line (including the
/// trailing newline) directly to a connection's output buffer,
/// splicing in a pre-serialized outcome — the reactor's warm-hit fast
/// path. Byte-identical to `ServeResponse::Scheduled(..).encode()`
/// for the same inputs (pinned by a unit test), so clients cannot
/// distinguish the fast path from the generic one.
pub fn render_scheduled(
    out: &mut Vec<u8>,
    key: u64,
    cache_hit: bool,
    outcome_json: &[u8],
    latency_us: u64,
) {
    out.extend_from_slice(b"{\"v\":1,\"status\":\"ok\",\"verb\":\"schedule\",\"key\":\"");
    push_key_hex(out, key);
    out.extend_from_slice(b"\",\"cache\":\"");
    out.extend_from_slice(if cache_hit { b"hit" } else { b"miss" as &[u8] });
    out.extend_from_slice(b"\",\"outcome\":");
    out.extend_from_slice(outcome_json);
    out.extend_from_slice(
        b",\"code\":null,\"error\":null,\"stats\":null,\"retryable\":null,\"latency_us\":",
    );
    push_u64(out, latency_us);
    out.extend_from_slice(b"}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        Outcome {
            app: "e1".to_owned(),
            scheduler: "cds".to_owned(),
            clusters: 3,
            rf: 4,
            dt_avoided_words: 96,
            data_words: 4096,
            context_words: 512,
            total_cycles: 123_456,
            degraded: false,
        }
    }

    #[test]
    fn v1_request_roundtrips() {
        let mut spec = ScheduleSpec::workload("e1");
        spec.iterations = Some(16);
        spec.deadline_ms = Some(250);
        let line = ServeRequest::Schedule(spec.clone()).encode();
        assert!(line.contains("\"v\":1"), "envelope carries the version");
        let (back, version) = decode_request(&line).expect("decodes");
        assert_eq!(version, WireVersion::V1);
        match back {
            ServeRequest::Schedule(s) => assert_eq!(s, spec),
            other => panic!("wrong variant: {other:?}"),
        }
        let (_, v) = decode_request(r#"{"v":1,"verb":"ping"}"#).expect("minimal v1 ping");
        assert_eq!(v, WireVersion::V1);
    }

    #[test]
    fn legacy_frames_pass_the_compat_shim() {
        // The PR-3 wire shape: no `v` key at all.
        let legacy = r#"{"verb":"schedule","workload":"mpeg","iterations":8,"fb_kw":8}"#;
        let (request, version) = decode_request(legacy).expect("shim accepts legacy frames");
        assert_eq!(version, WireVersion::Legacy);
        match request {
            ServeRequest::Schedule(s) => {
                assert_eq!(s.workload.as_deref(), Some("mpeg"));
                assert_eq!(s.iterations, Some(8));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // encode_legacy emits `v:null`, which the shim also treats as
        // absent.
        let line = ServeRequest::Ping.encode_legacy();
        let (_, version) = decode_request(&line).expect("null v is legacy");
        assert_eq!(version, WireVersion::Legacy);
    }

    #[test]
    fn version_field_is_sniffed_safely() {
        // Future numeric versions: typed UnsupportedVersion.
        assert_eq!(
            decode_request(r#"{"v":2,"verb":"ping"}"#),
            Err(RequestError::UnsupportedVersion { got: 2 })
        );
        assert_eq!(
            RequestError::UnsupportedVersion { got: 2 }.code(),
            ErrorCode::UnsupportedVersion
        );
        // Malformed version fields: BadRequest, never a panic.
        for bad in [
            r#"{"v":"one","verb":"ping"}"#,
            r#"{"v":1.5,"verb":"ping"}"#,
            r#"{"v":-1,"verb":"ping"}"#,
            r#"{"v":true,"verb":"ping"}"#,
            r#"{"v":[1],"verb":"ping"}"#,
            r#"{"v":{"x":1},"verb":"ping"}"#,
        ] {
            let err = decode_request(bad).expect_err("wrong-typed v is rejected");
            assert_eq!(err.code(), ErrorCode::BadRequest, "{bad}");
        }
        // Unknown verbs are BadRequest too.
        let err = decode_request(r#"{"v":1,"verb":"fly"}"#).expect_err("unknown verb");
        assert!(matches!(err, RequestError::Malformed(_)));
    }

    #[test]
    fn qos_class_resolution_follows_the_compat_rules() {
        // Explicit classes roundtrip through the typed surface.
        let mut spec = ScheduleSpec::workload("e1");
        spec.class = Some(QosClass::Priority);
        let line = ServeRequest::Schedule(spec.clone()).encode();
        assert!(line.contains("\"class\":\"priority\""));
        match decode_request(&line).expect("decodes").0 {
            ServeRequest::Schedule(s) => {
                assert_eq!(s, spec);
                assert_eq!(s.qos(), QosClass::Priority);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // Absent class (v1 and legacy alike): standard lane, no error.
        for frame in [
            r#"{"v":1,"verb":"schedule","workload":"e1"}"#,
            r#"{"verb":"schedule","workload":"e1"}"#,
            r#"{"v":1,"verb":"schedule","workload":"e1","class":null}"#,
        ] {
            match decode_request(frame).expect("decodes").0 {
                ServeRequest::Schedule(s) => {
                    assert_eq!(s.class, None, "{frame}");
                    assert_eq!(s.qos(), QosClass::Standard, "{frame}");
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
        // Unknown class *names* degrade to standard…
        let future = r#"{"v":1,"verb":"schedule","workload":"e1","class":"platinum"}"#;
        match decode_request(future).expect("decodes").0 {
            ServeRequest::Schedule(s) => assert_eq!(s.class, Some(QosClass::Standard)),
            other => panic!("wrong variant: {other:?}"),
        }
        // …but a wrong-typed class field is a typed BadRequest.
        for bad in [
            r#"{"v":1,"verb":"schedule","workload":"e1","class":3}"#,
            r#"{"v":1,"verb":"schedule","workload":"e1","class":["priority"]}"#,
            r#"{"v":1,"verb":"schedule","workload":"e1","class":{"x":1}}"#,
        ] {
            let err = decode_request(bad).expect_err("wrong-typed class is rejected");
            assert_eq!(err.code(), ErrorCode::BadRequest, "{bad}");
        }
        // Wire strings are stable and ALL is in dequeue order.
        for class in QosClass::ALL {
            assert_eq!(QosClass::from_wire(class.as_str()), Some(class));
        }
        assert_eq!(QosClass::ALL.map(QosClass::index), [0, 1, 2]);
        assert_eq!(QosClass::from_wire_lossy("gold"), QosClass::Standard);
    }

    #[test]
    fn error_codes_have_stable_wire_strings() {
        let all = [
            ErrorCode::Overloaded,
            ErrorCode::Deadline,
            ErrorCode::Faulted,
            ErrorCode::BadRequest,
            ErrorCode::Oversized,
            ErrorCode::Shutdown,
            ErrorCode::UnsupportedVersion,
        ];
        for code in all {
            assert_eq!(ErrorCode::from_wire(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::from_wire("nope"), None);
        assert!(ErrorCode::Overloaded.retryable());
        assert!(ErrorCode::Deadline.retryable());
        assert!(ErrorCode::Faulted.retryable());
        assert!(!ErrorCode::BadRequest.retryable());
        assert!(!ErrorCode::Oversized.retryable());
        assert!(!ErrorCode::Shutdown.retryable());
        assert!(!ErrorCode::UnsupportedVersion.retryable());
    }

    #[test]
    fn responses_roundtrip_through_the_typed_surface() {
        let scheduled = ServeResponse::Scheduled(Scheduled {
            key: 0xdead_beef,
            cache_hit: false,
            outcome: outcome(),
            latency_us: 321,
        });
        let line = scheduled.encode();
        assert!(line.contains("\"key\":\"00000000deadbeef\""));
        assert_eq!(ServeResponse::decode(&line).expect("decodes"), scheduled);

        let failed = ServeResponse::Failed(
            ServeError::new(ErrorCode::Overloaded, "admission queue full").with_key(1),
        );
        let line = failed.encode();
        assert!(
            line.contains("\"status\":\"rejected\""),
            "legacy status kept"
        );
        assert!(line.contains("\"code\":\"overloaded\""));
        match ServeResponse::decode(&line).expect("decodes") {
            ServeResponse::Failed(e) => {
                assert_eq!(e.code, ErrorCode::Overloaded);
                assert!(e.retryable());
                assert_eq!(e.key, Some(1));
            }
            other => panic!("wrong variant: {other:?}"),
        }

        for r in [
            ServeResponse::Pong { latency_us: 5 },
            ServeResponse::ShuttingDown { latency_us: 6 },
            ServeResponse::Stats(StatsReply {
                entries: vec![StatEntry {
                    name: "serve.requests".to_owned(),
                    value: 9,
                }],
                latency_us: 7,
            }),
        ] {
            assert_eq!(ServeResponse::decode(&r.encode()).expect("decodes"), r);
        }
    }

    #[test]
    fn legacy_error_responses_classify_by_retry_hint() {
        // A code-less error frame (legacy server) maps through the
        // retryable hint instead of failing the decode.
        let transient =
            r#"{"status":"error","verb":"schedule","retryable":true,"error":"x","latency_us":1}"#;
        match ServeResponse::decode(transient).expect("decodes") {
            ServeResponse::Failed(e) => assert_eq!(e.code, ErrorCode::Faulted),
            other => panic!("wrong variant: {other:?}"),
        }
        let hard = r#"{"status":"error","verb":"schedule","error":"x","latency_us":1}"#;
        match ServeResponse::decode(hard).expect("decodes") {
            ServeResponse::Failed(e) => assert_eq!(e.code, ErrorCode::BadRequest),
            other => panic!("wrong variant: {other:?}"),
        }
        // An unknown future code degrades the same way.
        let future = r#"{"status":"error","verb":"schedule","code":"telepathy_failure","retryable":true,"error":"x","latency_us":1}"#;
        match ServeResponse::decode(future).expect("decodes") {
            ServeResponse::Failed(e) => assert_eq!(e.code, ErrorCode::Faulted),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn fast_renderer_matches_the_derive_byte_for_byte() {
        for (key, hit, latency) in [(0u64, true, 0u64), (0xdead_beef, false, 987_654)] {
            let scheduled = ServeResponse::Scheduled(Scheduled {
                key,
                cache_hit: hit,
                outcome: outcome(),
                latency_us: latency,
            });
            let mut generic = scheduled.encode().into_bytes();
            generic.push(b'\n');
            let outcome_json = serde_json::to_string(&outcome()).expect("serializes");
            let mut fast = Vec::new();
            render_scheduled(&mut fast, key, hit, outcome_json.as_bytes(), latency);
            assert_eq!(
                String::from_utf8_lossy(&fast),
                String::from_utf8_lossy(&generic),
                "fast path must be indistinguishable on the wire"
            );
        }
    }

    #[test]
    fn frame_buffer_splits_and_bounds() {
        let mut fb = FrameBuffer::new(16);
        fb.extend(b"hello");
        assert_eq!(fb.next_frame(), Ok(None), "incomplete frame waits");
        fb.extend(b" world\nsecond\r\n");
        assert_eq!(fb.next_frame(), Ok(Some("hello world")));
        assert_eq!(fb.next_frame(), Ok(Some("second")));
        assert_eq!(fb.next_frame(), Ok(None));
        assert!(fb.is_empty());

        // A newline-free flood trips the bound instead of buffering.
        fb.extend(&[b'x'; 17]);
        assert_eq!(fb.next_frame(), Err(FrameError::Oversized { limit: 16 }));
    }

    #[test]
    fn frame_buffer_rejects_invalid_utf8_but_recovers() {
        let mut fb = FrameBuffer::new(64);
        fb.extend(&[0xff, 0xfe, b'\n']);
        fb.extend(b"after\n");
        assert_eq!(fb.next_frame(), Err(FrameError::InvalidUtf8));
        // The bad frame was consumed; the next one parses.
        assert_eq!(fb.next_frame(), Ok(Some("after")));
    }

    #[test]
    fn frame_buffer_reuses_its_allocation_across_frames() {
        let mut fb = FrameBuffer::new(64);
        fb.extend(b"warmup-frame-to-size-the-buffer\n");
        assert!(fb.next_frame().expect("ok").is_some());
        fb.extend(b"a\n"); // fully-consumed buffer compacts for free
        let cap = fb.buf.capacity();
        for _ in 0..1000 {
            assert_eq!(fb.next_frame(), Ok(Some("a")));
            assert_eq!(fb.next_frame(), Ok(None));
            fb.extend(b"a\n");
        }
        assert_eq!(fb.buf.capacity(), cap, "steady state allocates nothing");
    }

    #[test]
    fn key_formatting_roundtrips() {
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_key(&format_key(key)), Some(key));
        }
        assert_eq!(parse_key(""), None);
        assert_eq!(parse_key("zz"), None);
        assert_eq!(parse_key("00000000000000001"), None, "too long");
    }

    #[test]
    fn outcome_degraded_defaults_to_false_on_old_wire_format() {
        let legacy = r#"{"app":"e1","scheduler":"cds","clusters":1,"rf":1,
            "dt_avoided_words":0,"data_words":0,"context_words":0,"total_cycles":9}"#;
        let out: Outcome = serde_json::from_str(legacy).expect("parses without the field");
        assert!(!out.degraded);
    }
}
