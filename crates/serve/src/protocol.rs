//! The wire protocol: newline-delimited JSON, one object per line.
//!
//! Every request is one [`ScheduleRequest`] object on one line; the
//! server answers with exactly one [`ScheduleResponse`] line. Four
//! verbs exist:
//!
//! ```text
//! {"verb":"schedule","workload":"e1","iterations":16,"scheduler":"cds","deadline_ms":500}
//! {"verb":"schedule","app":{…inline application…},"fb_kw":2}
//! {"verb":"ping"}
//! {"verb":"stats"}
//! {"verb":"shutdown"}
//! ```
//!
//! A `schedule` request names its application either by catalog name
//! (`workload`, resolved through [`mcds_workloads::mix::by_name`]) or
//! inline (`app`, a full serialized
//! [`Application`](mcds_model::Application)); the architecture is M1
//! with an optional `fb_kw` kiloword override or a full inline `arch`.

use serde::{Deserialize, Serialize};

use mcds_model::{Application, ArchParams};

/// One request line. Unknown fields are ignored; a missing optional
/// field takes its documented default.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleRequest {
    /// `schedule`, `ping`, `stats`, or `shutdown`.
    pub verb: String,
    /// Catalog workload name (`e1`, `e2`, `e3`, `mpeg`, `atr-sld`,
    /// `atr-fi`). Mutually exclusive with `app`.
    pub workload: Option<String>,
    /// Streaming iterations for a catalog workload (default 16).
    pub iterations: Option<u64>,
    /// Inline application (validated server-side before scheduling).
    pub app: Option<Application>,
    /// Full inline architecture; overrides `fb_kw`.
    pub arch: Option<ArchParams>,
    /// Frame Buffer set size in kilowords over the M1 baseline
    /// (default 1).
    pub fb_kw: Option<u64>,
    /// Scheduler name (`basic`, `ds`, `cds`; default `cds`).
    pub scheduler: Option<String>,
    /// Per-request deadline in milliseconds; the pipeline abandons the
    /// run at the next stage boundary once it expires.
    pub deadline_ms: Option<u64>,
}

impl ScheduleRequest {
    /// A bare request with the given verb and every option unset.
    #[must_use]
    pub fn verb(verb: &str) -> Self {
        ScheduleRequest {
            verb: verb.to_owned(),
            workload: None,
            iterations: None,
            app: None,
            arch: None,
            fb_kw: None,
            scheduler: None,
            deadline_ms: None,
        }
    }

    /// A `schedule` request for a catalog workload.
    #[must_use]
    pub fn schedule(workload: &str) -> Self {
        let mut r = ScheduleRequest::verb("schedule");
        r.workload = Some(workload.to_owned());
        r
    }
}

/// The condensed result of one scheduling run — everything the
/// serving benchmark compares, nothing architecture-internal. Identical
/// requests must serialize to byte-identical outcomes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outcome {
    /// Application name.
    pub app: String,
    /// Scheduler that produced the plan.
    pub scheduler: String,
    /// Number of clusters scheduled.
    pub clusters: u64,
    /// Chosen reuse factor.
    pub rf: u64,
    /// Data transfers avoided per iteration (words) by retention.
    pub dt_avoided_words: u64,
    /// Total data words moved by the plan.
    pub data_words: u64,
    /// Total context words loaded.
    pub context_words: u64,
    /// Simulated execution time in cycles.
    pub total_cycles: u64,
}

/// One `stats` counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatEntry {
    /// Counter name (e.g. `serve.cache.hits`).
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// One response line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleResponse {
    /// `ok`, `error`, or `rejected` (admission queue full).
    pub status: String,
    /// Echo of the request verb (`schedule`, `ping`, `stats`,
    /// `shutdown`).
    pub verb: String,
    /// Content-addressed request key as 16 hex digits (`schedule`
    /// only).
    pub key: Option<String>,
    /// `hit` or `miss` (`schedule` only).
    pub cache: Option<String>,
    /// The scheduling outcome on success.
    pub outcome: Option<Outcome>,
    /// Diagnostic on `error`/`rejected`.
    pub error: Option<String>,
    /// Metrics snapshot (`stats` only).
    pub stats: Option<Vec<StatEntry>>,
    /// Server-side latency of this request in microseconds.
    pub latency_us: u64,
}

impl ScheduleResponse {
    fn bare(status: &str, verb: &str) -> Self {
        ScheduleResponse {
            status: status.to_owned(),
            verb: verb.to_owned(),
            key: None,
            cache: None,
            outcome: None,
            error: None,
            stats: None,
            latency_us: 0,
        }
    }

    /// A successful non-schedule response (`ping`, `shutdown`).
    #[must_use]
    pub fn ok(verb: &str) -> Self {
        ScheduleResponse::bare("ok", verb)
    }

    /// A successful `schedule` response.
    #[must_use]
    pub fn outcome(key: u64, cache_hit: bool, outcome: Outcome) -> Self {
        let mut r = ScheduleResponse::bare("ok", "schedule");
        r.key = Some(format_key(key));
        r.cache = Some(if cache_hit { "hit" } else { "miss" }.to_owned());
        r.outcome = Some(outcome);
        r
    }

    /// An `error` response.
    #[must_use]
    pub fn error(verb: &str, message: impl Into<String>) -> Self {
        let mut r = ScheduleResponse::bare("error", verb);
        r.error = Some(message.into());
        r
    }

    /// An overload rejection (bounded admission queue full).
    #[must_use]
    pub fn rejected(key: u64) -> Self {
        let mut r = ScheduleResponse::bare("rejected", "schedule");
        r.key = Some(format_key(key));
        r.error = Some("overloaded: admission queue full".to_owned());
        r
    }

    /// A `stats` response carrying a metrics snapshot.
    #[must_use]
    pub fn stats(entries: Vec<StatEntry>) -> Self {
        let mut r = ScheduleResponse::bare("ok", "stats");
        r.stats = Some(entries);
        r
    }
}

/// Renders a request key as the protocol's 16-hex-digit form.
#[must_use]
pub fn format_key(key: u64) -> String {
    format!("{key:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_and_tolerates_missing_options() {
        let mut r = ScheduleRequest::schedule("e1");
        r.iterations = Some(16);
        r.deadline_ms = Some(250);
        let line = serde_json::to_string(&r).expect("serializes");
        let back: ScheduleRequest = serde_json::from_str(&line).expect("parses");
        assert_eq!(back.verb, "schedule");
        assert_eq!(back.workload.as_deref(), Some("e1"));
        assert_eq!(back.deadline_ms, Some(250));

        let minimal: ScheduleRequest =
            serde_json::from_str(r#"{"verb":"ping"}"#).expect("options default to None");
        assert_eq!(minimal.verb, "ping");
        assert!(minimal.workload.is_none() && minimal.app.is_none());
    }

    #[test]
    fn responses_roundtrip() {
        let out = Outcome {
            app: "e1".to_owned(),
            scheduler: "cds".to_owned(),
            clusters: 3,
            rf: 4,
            dt_avoided_words: 96,
            data_words: 4096,
            context_words: 512,
            total_cycles: 123_456,
        };
        let resp = ScheduleResponse::outcome(0xdead_beef, false, out.clone());
        let line = serde_json::to_string(&resp).expect("serializes");
        let back: ScheduleResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(back.status, "ok");
        assert_eq!(back.key.as_deref(), Some("00000000deadbeef"));
        assert_eq!(back.cache.as_deref(), Some("miss"));
        assert_eq!(back.outcome, Some(out));

        let rej = ScheduleResponse::rejected(1);
        assert_eq!(rej.status, "rejected");
        assert!(rej.error.as_deref().expect("reason").contains("overloaded"));
    }
}
