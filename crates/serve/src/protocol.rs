//! The wire protocol: newline-delimited JSON, one object per line.
//!
//! Every request is one [`ScheduleRequest`] object on one line; the
//! server answers with exactly one [`ScheduleResponse`] line. Four
//! verbs exist:
//!
//! ```text
//! {"verb":"schedule","workload":"e1","iterations":16,"scheduler":"cds","deadline_ms":500}
//! {"verb":"schedule","app":{…inline application…},"fb_kw":2}
//! {"verb":"ping"}
//! {"verb":"stats"}
//! {"verb":"shutdown"}
//! ```
//!
//! A `schedule` request names its application either by catalog name
//! (`workload`, resolved through [`mcds_workloads::mix::by_name`]) or
//! inline (`app`, a full serialized
//! [`Application`](mcds_model::Application)); the architecture is M1
//! with an optional `fb_kw` kiloword override or a full inline `arch`.

use std::fmt;

use serde::{Deserialize, Serialize};

use mcds_model::{Application, ArchParams};

/// Why a received frame was rejected before parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// More bytes buffered without a newline than the configured
    /// maximum — the connection must be closed, since the frame
    /// boundary is lost.
    Oversized {
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// The frame is not valid UTF-8. The frame is consumed; the
    /// connection may continue at the next newline.
    InvalidUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit without a newline")
            }
            FrameError::InvalidUtf8 => write!(f, "frame is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A bounded accumulator for newline-delimited frames.
///
/// Fixes the OOM-by-long-line hazard of naive line reading: a peer
/// that streams bytes without ever sending `\n` is cut off with a
/// typed [`FrameError::Oversized`] once `max_bytes` is buffered,
/// instead of growing the buffer without bound. Frames that are not
/// valid UTF-8 are rejected (typed, recoverable) rather than lossily
/// transcoded.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    max_bytes: usize,
}

impl FrameBuffer {
    /// An empty buffer that holds at most `max_bytes` of an unfinished
    /// frame (clamped to at least 1).
    #[must_use]
    pub fn new(max_bytes: usize) -> FrameBuffer {
        FrameBuffer {
            buf: Vec::new(),
            max_bytes: max_bytes.max(1),
        }
    }

    /// Appends received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (for tests/diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pops the next complete frame (one line, newline stripped).
    ///
    /// Returns `Ok(None)` when no complete frame is buffered yet.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] when the unfinished frame already
    /// exceeds the limit (the caller must drop the connection);
    /// [`FrameError::InvalidUtf8`] when the completed frame is not
    /// UTF-8 (the frame is consumed — the caller may answer with a
    /// typed error and keep reading).
    pub fn next_frame(&mut self) -> Result<Option<String>, FrameError> {
        match self.buf.iter().position(|&b| b == b'\n') {
            // The limit applies to the *line*, not the delivery: a
            // too-long line whose newline arrived in the same read is
            // just as oversized as one still waiting for its newline,
            // so the decision cannot depend on TCP segmentation.
            Some(pos) if pos > self.max_bytes => Err(FrameError::Oversized {
                limit: self.max_bytes,
            }),
            Some(pos) => {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                match String::from_utf8(line) {
                    Ok(text) => Ok(Some(text)),
                    Err(_) => Err(FrameError::InvalidUtf8),
                }
            }
            None if self.buf.len() > self.max_bytes => Err(FrameError::Oversized {
                limit: self.max_bytes,
            }),
            None => Ok(None),
        }
    }
}

/// One request line. Unknown fields are ignored; a missing optional
/// field takes its documented default.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleRequest {
    /// `schedule`, `ping`, `stats`, or `shutdown`.
    pub verb: String,
    /// Catalog workload name (`e1`, `e2`, `e3`, `mpeg`, `atr-sld`,
    /// `atr-fi`). Mutually exclusive with `app`.
    pub workload: Option<String>,
    /// Streaming iterations for a catalog workload (default 16).
    pub iterations: Option<u64>,
    /// Inline application (validated server-side before scheduling).
    pub app: Option<Application>,
    /// Full inline architecture; overrides `fb_kw`.
    pub arch: Option<ArchParams>,
    /// Frame Buffer set size in kilowords over the M1 baseline
    /// (default 1).
    pub fb_kw: Option<u64>,
    /// Scheduler name (`basic`, `ds`, `cds`; default `cds`).
    pub scheduler: Option<String>,
    /// Per-request deadline in milliseconds; the pipeline abandons the
    /// run at the next stage boundary once it expires.
    pub deadline_ms: Option<u64>,
}

impl ScheduleRequest {
    /// A bare request with the given verb and every option unset.
    #[must_use]
    pub fn verb(verb: &str) -> Self {
        ScheduleRequest {
            verb: verb.to_owned(),
            workload: None,
            iterations: None,
            app: None,
            arch: None,
            fb_kw: None,
            scheduler: None,
            deadline_ms: None,
        }
    }

    /// A `schedule` request for a catalog workload.
    #[must_use]
    pub fn schedule(workload: &str) -> Self {
        let mut r = ScheduleRequest::verb("schedule");
        r.workload = Some(workload.to_owned());
        r
    }
}

/// The condensed result of one scheduling run — everything the
/// serving benchmark compares, nothing architecture-internal. Identical
/// requests must serialize to byte-identical outcomes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outcome {
    /// Application name.
    pub app: String,
    /// Scheduler that produced the plan.
    pub scheduler: String,
    /// Number of clusters scheduled.
    pub clusters: u64,
    /// Chosen reuse factor.
    pub rf: u64,
    /// Data transfers avoided per iteration (words) by retention.
    pub dt_avoided_words: u64,
    /// Total data words moved by the plan.
    pub data_words: u64,
    /// Total context words loaded.
    pub context_words: u64,
    /// Simulated execution time in cycles.
    pub total_cycles: u64,
    /// `true` when this outcome came from the degraded fallback path
    /// (within-cluster-only scheduler instead of the full CDS). Cached
    /// under a separate key so it never masks the full-quality result.
    #[serde(default)]
    pub degraded: bool,
}

/// One `stats` counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatEntry {
    /// Counter name (e.g. `serve.cache.hits`).
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// One response line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleResponse {
    /// `ok`, `error`, or `rejected` (admission queue full).
    pub status: String,
    /// Echo of the request verb (`schedule`, `ping`, `stats`,
    /// `shutdown`).
    pub verb: String,
    /// Content-addressed request key as 16 hex digits (`schedule`
    /// only).
    pub key: Option<String>,
    /// `hit` or `miss` (`schedule` only).
    pub cache: Option<String>,
    /// The scheduling outcome on success.
    pub outcome: Option<Outcome>,
    /// Diagnostic on `error`/`rejected`.
    pub error: Option<String>,
    /// Metrics snapshot (`stats` only).
    pub stats: Option<Vec<StatEntry>>,
    /// On `error`/`rejected`: whether retrying the same request may
    /// succeed. `Some(true)` for transient failures (overload, injected
    /// faults, deadline cancellations, worker crashes); `Some(false)`
    /// for deterministic failures (malformed or infeasible requests).
    #[serde(default)]
    pub retryable: Option<bool>,
    /// Server-side latency of this request in microseconds.
    pub latency_us: u64,
}

impl ScheduleResponse {
    fn bare(status: &str, verb: &str) -> Self {
        ScheduleResponse {
            status: status.to_owned(),
            verb: verb.to_owned(),
            key: None,
            cache: None,
            outcome: None,
            error: None,
            stats: None,
            retryable: None,
            latency_us: 0,
        }
    }

    /// A successful non-schedule response (`ping`, `shutdown`).
    #[must_use]
    pub fn ok(verb: &str) -> Self {
        ScheduleResponse::bare("ok", verb)
    }

    /// A successful `schedule` response.
    #[must_use]
    pub fn outcome(key: u64, cache_hit: bool, outcome: Outcome) -> Self {
        let mut r = ScheduleResponse::bare("ok", "schedule");
        r.key = Some(format_key(key));
        r.cache = Some(if cache_hit { "hit" } else { "miss" }.to_owned());
        r.outcome = Some(outcome);
        r
    }

    /// An `error` response for a deterministic failure.
    #[must_use]
    pub fn error(verb: &str, message: impl Into<String>) -> Self {
        let mut r = ScheduleResponse::bare("error", verb);
        r.error = Some(message.into());
        r.retryable = Some(false);
        r
    }

    /// An `error` response for a transient failure (retrying the same
    /// request may succeed).
    #[must_use]
    pub fn transient_error(verb: &str, message: impl Into<String>) -> Self {
        let mut r = ScheduleResponse::error(verb, message);
        r.retryable = Some(true);
        r
    }

    /// An overload rejection (bounded admission queue full).
    #[must_use]
    pub fn rejected(key: u64) -> Self {
        let mut r = ScheduleResponse::bare("rejected", "schedule");
        r.key = Some(format_key(key));
        r.error = Some("overloaded: admission queue full".to_owned());
        r.retryable = Some(true);
        r
    }

    /// A `stats` response carrying a metrics snapshot.
    #[must_use]
    pub fn stats(entries: Vec<StatEntry>) -> Self {
        let mut r = ScheduleResponse::bare("ok", "stats");
        r.stats = Some(entries);
        r
    }
}

/// Renders a request key as the protocol's 16-hex-digit form.
#[must_use]
pub fn format_key(key: u64) -> String {
    format!("{key:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_and_tolerates_missing_options() {
        let mut r = ScheduleRequest::schedule("e1");
        r.iterations = Some(16);
        r.deadline_ms = Some(250);
        let line = serde_json::to_string(&r).expect("serializes");
        let back: ScheduleRequest = serde_json::from_str(&line).expect("parses");
        assert_eq!(back.verb, "schedule");
        assert_eq!(back.workload.as_deref(), Some("e1"));
        assert_eq!(back.deadline_ms, Some(250));

        let minimal: ScheduleRequest =
            serde_json::from_str(r#"{"verb":"ping"}"#).expect("options default to None");
        assert_eq!(minimal.verb, "ping");
        assert!(minimal.workload.is_none() && minimal.app.is_none());
    }

    #[test]
    fn frame_buffer_splits_and_bounds() {
        let mut fb = FrameBuffer::new(16);
        fb.extend(b"hello");
        assert_eq!(fb.next_frame(), Ok(None), "incomplete frame waits");
        fb.extend(b" world\nsecond\r\n");
        assert_eq!(fb.next_frame(), Ok(Some("hello world".to_owned())));
        assert_eq!(fb.next_frame(), Ok(Some("second".to_owned())));
        assert_eq!(fb.next_frame(), Ok(None));
        assert!(fb.is_empty());

        // A newline-free flood trips the bound instead of buffering.
        fb.extend(&[b'x'; 17]);
        assert_eq!(fb.next_frame(), Err(FrameError::Oversized { limit: 16 }));
    }

    #[test]
    fn frame_buffer_rejects_invalid_utf8_but_recovers() {
        let mut fb = FrameBuffer::new(64);
        fb.extend(&[0xff, 0xfe, b'\n']);
        fb.extend(b"after\n");
        assert_eq!(fb.next_frame(), Err(FrameError::InvalidUtf8));
        // The bad frame was consumed; the next one parses.
        assert_eq!(fb.next_frame(), Ok(Some("after".to_owned())));
    }

    #[test]
    fn outcome_degraded_defaults_to_false_on_old_wire_format() {
        let legacy = r#"{"app":"e1","scheduler":"cds","clusters":1,"rf":1,
            "dt_avoided_words":0,"data_words":0,"context_words":0,"total_cycles":9}"#;
        let out: Outcome = serde_json::from_str(legacy).expect("parses without the field");
        assert!(!out.degraded);
    }

    #[test]
    fn responses_roundtrip() {
        let out = Outcome {
            app: "e1".to_owned(),
            scheduler: "cds".to_owned(),
            clusters: 3,
            rf: 4,
            dt_avoided_words: 96,
            data_words: 4096,
            context_words: 512,
            total_cycles: 123_456,
            degraded: false,
        };
        let resp = ScheduleResponse::outcome(0xdead_beef, false, out.clone());
        let line = serde_json::to_string(&resp).expect("serializes");
        let back: ScheduleResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(back.status, "ok");
        assert_eq!(back.key.as_deref(), Some("00000000deadbeef"));
        assert_eq!(back.cache.as_deref(), Some("miss"));
        assert_eq!(back.outcome, Some(out));

        let rej = ScheduleResponse::rejected(1);
        assert_eq!(rej.status, "rejected");
        assert!(rej.error.as_deref().expect("reason").contains("overloaded"));
        assert_eq!(rej.retryable, Some(true), "overload is retryable");
        assert_eq!(
            ScheduleResponse::error("schedule", "bad").retryable,
            Some(false)
        );
        assert_eq!(
            ScheduleResponse::transient_error("schedule", "fault").retryable,
            Some(true)
        );
    }
}
