//! # mcds-serve — a concurrent scheduling service
//!
//! Wraps the `mcds-core` [`Pipeline`](mcds_core::Pipeline) in a small
//! std-only daemon speaking newline-delimited JSON over TCP, plus the
//! matching load-test client. Three layers:
//!
//! * **Caching** — every `schedule` request is reduced to a canonical
//!   content key ([`mcds_core::request_key`], FNV-1a over the
//!   canonicalized value tree) and answered from the
//!   [`OutcomeCache`]; concurrent identical requests are deduplicated
//!   single-flight so one popular request costs one pipeline run.
//! * **Robustness** — a bounded admission queue rejects (never
//!   buffers unboundedly) under overload, per-request deadlines are
//!   enforced mid-pipeline through
//!   [`CancelToken`](mcds_core::CancelToken), a malformed request
//!   poisons only its own connection, and `shutdown` drains
//!   gracefully.
//! * **Observability** — the shared
//!   [`MetricsRegistry`](mcds_core::MetricsRegistry) counts
//!   requests, hits, misses, rejections, and latency, exposed over the
//!   wire via the `stats` verb.
//!
//! See `DESIGN.md` §10 for the protocol grammar and semantics.
//!
//! ```no_run
//! use mcds_serve::{LoadConfig, ServeConfig, Server, run_load};
//!
//! let server = Server::bind(ServeConfig::default())?;
//! let addr = server.local_addr().to_string();
//! let handle = std::thread::spawn(move || server.run());
//! let report = run_load(&LoadConfig { addr, ..LoadConfig::default() })?;
//! assert!(report.cache_hits > 0);
//! # handle.join().unwrap()?;
//! # Ok::<(), mcds_core::McdsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod client;
mod protocol;
mod server;

pub use cache::{degraded_key, Begin, CachedResult, FlightGuard, OutcomeCache};
pub use client::{run_load, LoadConfig, LoadReport};
pub use protocol::{
    format_key, FrameBuffer, FrameError, Outcome, ScheduleRequest, ScheduleResponse, StatEntry,
};
pub use server::{ServeConfig, ServeSummary, Server};
