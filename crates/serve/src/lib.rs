//! # mcds-serve — a concurrent scheduling service
//!
//! Wraps the `mcds-core` [`Pipeline`](mcds_core::Pipeline) in a small
//! std-only daemon speaking versioned newline-delimited JSON over TCP
//! (`"v":1` envelopes, machine-readable [`ErrorCode`]s), plus a typed
//! client and a scaled load harness. Four layers:
//!
//! * **Reactor** — one thread multiplexes every socket through
//!   `poll(2)` ([`sys`](crate) shim, no external crates): nonblocking
//!   reads into per-connection frame buffers, zero-copy frame
//!   scanning, responses rendered straight into per-connection write
//!   buffers. A fixed worker pool computes schedules behind a bounded
//!   admission queue.
//! * **Caching** — every `schedule` request is reduced to a canonical
//!   content key ([`mcds_core::request_key`]) and answered from the
//!   **sharded** [`OutcomeCache`]; concurrent identical requests are
//!   deduplicated single-flight without blocking any thread.
//! * **Robustness** — a full queue rejects with a typed `overloaded`
//!   code (never buffers unboundedly), per-request deadlines are
//!   enforced mid-pipeline through
//!   [`CancelToken`](mcds_core::CancelToken) and on parked waiters by
//!   reactor timers, a malformed request poisons only its own
//!   connection, and `shutdown` drains gracefully.
//! * **Durability** — an optional WAL-backed [`OutcomeStore`]
//!   journals every committed cache entry (CRC32-framed, snapshot
//!   compaction with atomic rename) and warm-starts the cache on boot,
//!   tolerating torn writes and truncated tails by scanning to the
//!   last valid record. See `DESIGN.md` §16.
//! * **Observability** — the shared
//!   [`MetricsRegistry`](mcds_core::MetricsRegistry) counts requests,
//!   hits, misses, rejections, and latency, exposed over the wire via
//!   the `stats` verb.
//!
//! See `DESIGN.md` §12 for the wire grammar, the version/compat
//! window, and the reactor's delivery guarantees.
//!
//! ```no_run
//! use mcds_serve::{ClientConfig, ScheduleSpec, ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig::default())?;
//! let addr = server.local_addr().to_string();
//! let handle = std::thread::spawn(move || server.run());
//! let mut client = ClientConfig::new(&addr).with_retry(3).connect()?;
//! let scheduled = client.schedule(&ScheduleSpec::workload("e1"))?;
//! assert_eq!(scheduled.outcome.app, "e1");
//! client.shutdown()?;
//! # handle.join().unwrap()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod client;
mod load;
mod protocol;
mod server;
mod store;
mod sys;

pub use cache::{
    degraded_key, CachedEntry, CachedError, CachedResult, FlightGuard, Lookup, OutcomeCache, Token,
    DEFAULT_SHARDS,
};
pub use client::{Client, ClientConfig, ClientError};
pub use load::{
    run_abuse, run_load, AbuseConfig, AbuseMode, AbuseReport, KeySpace, LoadConfig, LoadReport,
    PhaseStats,
};
pub use protocol::{
    decode_request, format_key, parse_key, render_scheduled, ErrorCode, FrameBuffer, FrameError,
    Outcome, QosClass, RequestError, ResponseError, ResponseFrame, ScheduleSpec, Scheduled,
    ServeError, ServeRequest, ServeResponse, StatEntry, StatsReply, WireVersion,
};
pub use server::{ServeConfig, ServeSummary, Server};
pub use store::{
    crc32, encode_frame, scan, FsyncPolicy, OutcomeStore, Record, RecoveryReport, Scan,
    StoreConfig, DEFAULT_FSYNC_INTERVAL_MS, JOURNAL_FILE, MAX_RECORD_BYTES, SNAPSHOT_FILE,
    SNAPSHOT_TMP,
};
