//! Property tests for the application model: builder-constructed
//! applications always validate, survive Serde round-trips, and their
//! dataflow queries are mutually consistent.

use mcds_model::{
    Application, ApplicationBuilder, ClusterSchedule, Cycles, DataId, DataKind, KernelId, Words,
};
use proptest::prelude::*;

/// Random layered pipeline: `layers` kernels in a chain, each kernel
/// optionally reading extra external inputs and emitting extra final
/// results.
fn app_strategy() -> impl Strategy<Value = Application> {
    (
        2usize..8,
        prop::collection::vec((1u64..300, 0usize..3, 0usize..2), 8),
        1u64..100,
    )
        .prop_map(|(layers, params, iterations)| {
            let mut b = ApplicationBuilder::new("prop");
            let mut carry = b.data("in", Words::new(7), DataKind::ExternalInput);
            for i in 0..layers {
                let (size, extra_in, extra_out) = params[i % params.len()];
                let mut inputs = vec![carry];
                for e in 0..extra_in {
                    inputs.push(b.data(
                        format!("x{i}_{e}"),
                        Words::new(size),
                        DataKind::ExternalInput,
                    ));
                }
                let kind = if i + 1 == layers {
                    DataKind::FinalResult
                } else {
                    DataKind::Intermediate
                };
                let next = b.data(format!("d{i}"), Words::new(size), kind);
                let mut outputs = vec![next];
                for e in 0..extra_out {
                    outputs.push(b.data(
                        format!("f{i}_{e}"),
                        Words::new(size),
                        DataKind::FinalResult,
                    ));
                }
                b.kernel(format!("k{i}"), 8, Cycles::new(size), &inputs, &outputs);
                carry = next;
            }
            b.iterations(iterations).build().expect("constructed valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn built_apps_revalidate(app in app_strategy()) {
        prop_assert!(app.validate().is_ok());
    }

    #[test]
    fn serde_roundtrip_preserves_everything(app in app_strategy()) {
        let json = serde_json::to_string(&app).expect("serialize");
        let back: Application = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&back, &app);
        prop_assert!(back.validate().is_ok());
    }

    #[test]
    fn dataflow_queries_are_consistent(app in app_strategy()) {
        let df = app.dataflow();
        for d in app.data() {
            // Producer/consumer agree with the kernels' own lists.
            if let Some(p) = df.producer(d.id()) {
                prop_assert!(app.kernel(p).writes(d.id()));
            }
            for &c in df.consumers(d.id()) {
                prop_assert!(app.kernel(c).reads(d.id()));
            }
        }
        for k in app.kernels() {
            for &s in df.successors(k.id()) {
                prop_assert!(df.depends_on(s, k.id()));
            }
        }
        // The topological order is a valid execution order.
        let order = df.topological_order();
        prop_assert_eq!(order.len(), app.kernels().len());
        prop_assert!(df.respects_order(&order));
    }

    #[test]
    fn singleton_schedule_always_valid(app in app_strategy()) {
        // Declaration order is a chain here, so singletons validate.
        let sched = ClusterSchedule::singletons(&app).expect("valid");
        prop_assert_eq!(sched.len(), app.kernels().len());
        let covered: usize = sched.clusters().iter().map(|c| c.len()).sum();
        prop_assert_eq!(covered, app.kernels().len());
        // Alternation invariant.
        for c in sched.clusters() {
            prop_assert_eq!(
                sched.fb_set(c.id()).index(),
                c.id().index() % 2,
            );
        }
    }

    #[test]
    fn totals_are_sums(app in app_strategy()) {
        let total: Words = app.data().iter().map(|d| d.size()).sum();
        prop_assert_eq!(app.total_data_per_iteration(), total);
        let ctx: u32 = app.kernels().iter().map(|k| k.contexts()).sum();
        prop_assert_eq!(app.total_contexts(), ctx);
        let _ = (DataId::new(0), KernelId::new(0));
    }
}
