//! Kernels: the macro-tasks of a MorphoSys application.

use serde::{Deserialize, Serialize};

use crate::{Cycles, DataId, KernelId};

/// A macro-task mapped onto the 8×8 reconfigurable-cell array.
///
/// At the abstraction level of the paper, "a kernel is characterized by
/// its contexts, as well as, its input and output data": the scheduler
/// never looks inside the computation, only at
///
/// * how many 32-bit context words must be resident in the Context
///   Memory before it can run,
/// * how long one iteration of it computes on the RC array, and
/// * which [`DataObject`](crate::DataObject)s it reads and writes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Kernel {
    id: KernelId,
    name: String,
    contexts: u32,
    exec_cycles: Cycles,
    inputs: Vec<DataId>,
    outputs: Vec<DataId>,
}

impl Kernel {
    /// Creates a kernel. Prefer
    /// [`ApplicationBuilder::kernel`](crate::ApplicationBuilder::kernel),
    /// which assigns the id and cross-checks the data references.
    #[must_use]
    pub fn new(
        id: KernelId,
        name: impl Into<String>,
        contexts: u32,
        exec_cycles: Cycles,
        inputs: Vec<DataId>,
        outputs: Vec<DataId>,
    ) -> Self {
        Kernel {
            id,
            name: name.into(),
            contexts,
            exec_cycles,
            inputs,
            outputs,
        }
    }

    /// The kernel's id within its application.
    #[must_use]
    pub fn id(&self) -> KernelId {
        self.id
    }

    /// Human-readable name (e.g. `"dct"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of 32-bit context words the kernel's configuration
    /// occupies in the Context Memory.
    #[must_use]
    pub fn contexts(&self) -> u32 {
        self.contexts
    }

    /// Computation time of one iteration on the RC array.
    #[must_use]
    pub fn exec_cycles(&self) -> Cycles {
        self.exec_cycles
    }

    /// Data objects the kernel reads.
    #[must_use]
    pub fn inputs(&self) -> &[DataId] {
        &self.inputs
    }

    /// Data objects the kernel writes. Each listed object is produced by
    /// exactly this kernel.
    #[must_use]
    pub fn outputs(&self) -> &[DataId] {
        &self.outputs
    }

    /// Returns `true` if the kernel reads `data`.
    #[must_use]
    pub fn reads(&self, data: DataId) -> bool {
        self.inputs.contains(&data)
    }

    /// Returns `true` if the kernel writes `data`.
    #[must_use]
    pub fn writes(&self, data: DataId) -> bool {
        self.outputs.contains(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Kernel {
        Kernel::new(
            KernelId::new(2),
            "dct",
            12,
            Cycles::new(640),
            vec![DataId::new(0), DataId::new(1)],
            vec![DataId::new(2)],
        )
    }

    #[test]
    fn accessors() {
        let k = sample();
        assert_eq!(k.id(), KernelId::new(2));
        assert_eq!(k.name(), "dct");
        assert_eq!(k.contexts(), 12);
        assert_eq!(k.exec_cycles(), Cycles::new(640));
        assert_eq!(k.inputs(), &[DataId::new(0), DataId::new(1)]);
        assert_eq!(k.outputs(), &[DataId::new(2)]);
    }

    #[test]
    fn reads_writes() {
        let k = sample();
        assert!(k.reads(DataId::new(0)));
        assert!(!k.reads(DataId::new(2)));
        assert!(k.writes(DataId::new(2)));
        assert!(!k.writes(DataId::new(0)));
    }

    #[test]
    fn serde_roundtrip() {
        let k = sample();
        let json = serde_json::to_string(&k).expect("serialize");
        let back: Kernel = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, k);
    }
}
