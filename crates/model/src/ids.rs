//! Typed indices for the entities of an application.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id with the given raw index.
            #[must_use]
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// Returns the raw index.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifies a [`Kernel`](crate::Kernel) within an
    /// [`Application`](crate::Application).
    ///
    /// Ids are dense: they index into [`Application::kernels`](crate::Application::kernels).
    KernelId,
    "k"
);

define_id!(
    /// Identifies a [`DataObject`](crate::DataObject) within an
    /// [`Application`](crate::Application).
    DataId,
    "d"
);

define_id!(
    /// Identifies a [`Cluster`](crate::Cluster) within a
    /// [`ClusterSchedule`](crate::ClusterSchedule).
    ClusterId,
    "C"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_index() {
        assert_eq!(KernelId::new(3).index(), 3);
        assert_eq!(DataId::new(0).index(), 0);
        assert_eq!(ClusterId::new(7).index(), 7);
        assert_eq!(usize::from(KernelId::new(9)), 9);
    }

    #[test]
    fn ids_display() {
        assert_eq!(KernelId::new(1).to_string(), "k1");
        assert_eq!(DataId::new(2).to_string(), "d2");
        assert_eq!(ClusterId::new(3).to_string(), "C3");
    }

    #[test]
    fn ids_order_and_hash() {
        use std::collections::HashSet;
        assert!(KernelId::new(1) < KernelId::new(2));
        let set: HashSet<DataId> = [DataId::new(1), DataId::new(1), DataId::new(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }
}
