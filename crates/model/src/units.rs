//! Strongly-typed quantities used throughout the workspace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A size expressed in Frame Buffer words.
///
/// The paper expresses all data sizes in (kilo)words of the Frame Buffer;
/// this newtype keeps them from being confused with cycle counts or raw
/// indices.
///
/// # Example
///
/// ```
/// use mcds_model::Words;
/// let a = Words::new(512) + Words::new(512);
/// assert_eq!(a, Words::kilo(1));
/// assert_eq!(a.get(), 1024);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Words(u64);

impl Words {
    /// A size of zero words.
    pub const ZERO: Words = Words(0);

    /// Creates a size of `n` words.
    #[must_use]
    pub const fn new(n: u64) -> Self {
        Words(n)
    }

    /// Creates a size of `n` kilowords (`n * 1024` words), matching the
    /// paper's "1K/2K/8K" Frame Buffer sizes.
    #[must_use]
    pub const fn kilo(n: u64) -> Self {
        Words(n * 1024)
    }

    /// Returns the raw word count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is a zero-sized quantity.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    #[must_use]
    pub const fn checked_sub(self, rhs: Words) -> Option<Words> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Words(v)),
            None => None,
        }
    }

    /// Saturating subtraction (clamps at zero).
    #[must_use]
    pub const fn saturating_sub(self, rhs: Words) -> Words {
        Words(self.0.saturating_sub(rhs.0))
    }

    /// The larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Words) -> Words {
        Words(self.0.max(other.0))
    }

    /// The smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Words) -> Words {
        Words(self.0.min(other.0))
    }
}

impl Add for Words {
    type Output = Words;
    fn add(self, rhs: Words) -> Words {
        Words(self.0 + rhs.0)
    }
}

impl AddAssign for Words {
    fn add_assign(&mut self, rhs: Words) {
        self.0 += rhs.0;
    }
}

impl Sub for Words {
    type Output = Words;
    /// # Panics
    ///
    /// Panics on underflow, like integer subtraction in debug builds.
    fn sub(self, rhs: Words) -> Words {
        Words(self.0.checked_sub(rhs.0).expect("Words underflow"))
    }
}

impl SubAssign for Words {
    fn sub_assign(&mut self, rhs: Words) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Words {
    type Output = Words;
    fn mul(self, rhs: u64) -> Words {
        Words(self.0 * rhs)
    }
}

impl Sum for Words {
    fn sum<I: Iterator<Item = Words>>(iter: I) -> Words {
        iter.fold(Words::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Words> for Words {
    fn sum<I: Iterator<Item = &'a Words>>(iter: I) -> Words {
        iter.copied().sum()
    }
}

impl fmt::Display for Words {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 && self.0.is_multiple_of(1024) {
            write!(f, "{}Kw", self.0 / 1024)
        } else {
            write!(f, "{}w", self.0)
        }
    }
}

/// A duration expressed in clock cycles of the reconfigurable array.
///
/// # Example
///
/// ```
/// use mcds_model::Cycles;
/// let t = Cycles::new(100) + Cycles::new(20);
/// assert_eq!(t.get(), 120);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cycles(u64);

impl Cycles {
    /// A duration of zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a duration of `n` cycles.
    #[must_use]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `true` if this duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction (clamps at zero).
    #[must_use]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// The smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// # Panics
    ///
    /// Panics on underflow.
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.checked_sub(rhs.0).expect("Cycles underflow"))
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Cycles> for Cycles {
    fn sum<I: Iterator<Item = &'a Cycles>>(iter: I) -> Cycles {
        iter.copied().sum()
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_arithmetic() {
        let a = Words::new(10);
        let b = Words::new(3);
        assert_eq!(a + b, Words::new(13));
        assert_eq!(a - b, Words::new(7));
        assert_eq!(a * 4, Words::new(40));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(b.saturating_sub(a), Words::ZERO);
    }

    #[test]
    fn words_kilo_and_display() {
        assert_eq!(Words::kilo(2).get(), 2048);
        assert_eq!(Words::kilo(2).to_string(), "2Kw");
        assert_eq!(Words::new(100).to_string(), "100w");
        assert_eq!(Words::new(1030).to_string(), "1030w");
    }

    #[test]
    fn words_sum_and_ordering() {
        let total: Words = [Words::new(1), Words::new(2), Words::new(3)].iter().sum();
        assert_eq!(total, Words::new(6));
        assert!(Words::new(1) < Words::new(2));
        assert_eq!(Words::new(5).max(Words::new(9)), Words::new(9));
        assert_eq!(Words::new(5).min(Words::new(9)), Words::new(5));
    }

    #[test]
    #[should_panic(expected = "Words underflow")]
    fn words_sub_underflow_panics() {
        let _ = Words::new(1) - Words::new(2);
    }

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(100);
        assert_eq!(a + Cycles::new(1), Cycles::new(101));
        assert_eq!(a - Cycles::new(1), Cycles::new(99));
        assert_eq!(a * 3, Cycles::new(300));
        assert_eq!(a.saturating_sub(Cycles::new(200)), Cycles::ZERO);
        assert_eq!(a.max(Cycles::new(7)), a);
    }

    #[test]
    fn cycles_sum_and_display() {
        let total: Cycles = vec![Cycles::new(4), Cycles::new(6)].into_iter().sum();
        assert_eq!(total, Cycles::new(10));
        assert_eq!(total.to_string(), "10cy");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Words::default(), Words::ZERO);
        assert_eq!(Cycles::default(), Cycles::ZERO);
        assert!(Words::ZERO.is_zero());
        assert!(Cycles::ZERO.is_zero());
    }

    #[test]
    fn serde_transparent() {
        let w: Words = serde_json::from_str("42").expect("deserialize");
        assert_eq!(w, Words::new(42));
        assert_eq!(
            serde_json::to_string(&Cycles::new(7)).expect("serialize"),
            "7"
        );
    }
}
