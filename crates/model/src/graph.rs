//! Producer/consumer relations derived from an [`Application`].
//!
//! This is the information the paper's *information extractor* computes
//! once per application: "kernel execution time, data reuse among
//! kernels, as well as, data size and number of contexts for each
//! kernel". The timing/size facts live on the [`Kernel`](crate::Kernel)s
//! themselves; [`DataflowInfo`] adds the reuse relations.

use crate::{Application, DataId, KernelId};

/// Producer and consumer maps for every data object, plus the induced
/// kernel dependency edges.
///
/// # Example
///
/// ```
/// use mcds_model::{ApplicationBuilder, DataKind, Words, Cycles};
///
/// # fn main() -> Result<(), mcds_model::ModelError> {
/// let mut b = ApplicationBuilder::new("x");
/// let a = b.data("a", Words::new(4), DataKind::ExternalInput);
/// let r = b.data("r", Words::new(4), DataKind::FinalResult);
/// let k0 = b.kernel("k0", 1, Cycles::new(10), &[a], &[r]);
/// let k1 = b.kernel("k1", 1, Cycles::new(10), &[a, r], &[]);
/// let df = b.build()?.dataflow();
/// assert_eq!(df.producer(a), None);
/// assert_eq!(df.producer(r), Some(k0));
/// assert_eq!(df.consumers(a), &[k0, k1]);
/// assert!(df.depends_on(k1, k0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowInfo {
    producer: Vec<Option<KernelId>>,
    consumers: Vec<Vec<KernelId>>,
    /// `succ[k]` = kernels that consume an output of `k`.
    succ: Vec<Vec<KernelId>>,
}

impl DataflowInfo {
    /// Computes the dataflow relations of `app`.
    #[must_use]
    pub fn compute(app: &Application) -> Self {
        let n_data = app.data().len();
        let mut producer: Vec<Option<KernelId>> = vec![None; n_data];
        let mut consumers: Vec<Vec<KernelId>> = vec![Vec::new(); n_data];
        for k in app.kernels() {
            for &d in k.outputs() {
                producer[d.index()] = Some(k.id());
            }
            for &d in k.inputs() {
                consumers[d.index()].push(k.id());
            }
        }
        let mut succ: Vec<Vec<KernelId>> = vec![Vec::new(); app.kernels().len()];
        for (d, p) in producer.iter().enumerate() {
            if let Some(p) = p {
                for &c in &consumers[d] {
                    if !succ[p.index()].contains(&c) {
                        succ[p.index()].push(c);
                    }
                }
            }
        }
        DataflowInfo {
            producer,
            consumers,
            succ,
        }
    }

    /// The kernel that produces `data`, or `None` for external inputs.
    ///
    /// # Panics
    ///
    /// Panics if `data` is out of range for the source application.
    #[must_use]
    pub fn producer(&self, data: DataId) -> Option<KernelId> {
        self.producer[data.index()]
    }

    /// The kernels that read `data`, in program order.
    ///
    /// # Panics
    ///
    /// Panics if `data` is out of range for the source application.
    #[must_use]
    pub fn consumers(&self, data: DataId) -> &[KernelId] {
        &self.consumers[data.index()]
    }

    /// Direct dataflow successors of `kernel` (kernels consuming any of
    /// its outputs).
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is out of range for the source application.
    #[must_use]
    pub fn successors(&self, kernel: KernelId) -> &[KernelId] {
        &self.succ[kernel.index()]
    }

    /// Returns `true` if `later` transitively depends on `earlier`.
    #[must_use]
    pub fn depends_on(&self, later: KernelId, earlier: KernelId) -> bool {
        let mut stack = vec![earlier];
        let mut seen = vec![false; self.succ.len()];
        while let Some(k) = stack.pop() {
            if k == later {
                return true;
            }
            if std::mem::replace(&mut seen[k.index()], true) {
                continue;
            }
            stack.extend(self.succ[k.index()].iter().copied().filter(|s| *s != k));
        }
        false
    }

    /// Verifies that the kernel sequence `order` respects all dataflow
    /// dependencies (every producer precedes all of its consumers).
    ///
    /// Kernels absent from `order` are ignored; this lets callers check
    /// partial sequences such as a single cluster.
    #[must_use]
    pub fn respects_order(&self, order: &[KernelId]) -> bool {
        let mut pos = vec![usize::MAX; self.succ.len()];
        for (i, &k) in order.iter().enumerate() {
            pos[k.index()] = i;
        }
        for (p, succs) in self.succ.iter().enumerate() {
            if pos[p] == usize::MAX {
                continue;
            }
            for c in succs {
                if pos[c.index()] != usize::MAX && pos[c.index()] < pos[p] {
                    return false;
                }
            }
        }
        true
    }

    /// A topological order of all kernels that keeps declaration order
    /// among independent kernels (stable Kahn's algorithm).
    #[must_use]
    pub fn topological_order(&self) -> Vec<KernelId> {
        let n = self.succ.len();
        let mut indeg = vec![0usize; n];
        for succs in &self.succ {
            for s in succs {
                indeg[s.index()] += 1;
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        // Stable: pick the smallest ready index each round.
        while let Some(&i) = ready.iter().min() {
            ready.retain(|&x| x != i);
            let Ok(index) = u32::try_from(i) else {
                // Kernel ids are already validated `u32`s, so the index
                // fits; bail rather than panic on degenerate input.
                break;
            };
            order.push(KernelId::new(index));
            for s in &self.succ[i] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    ready.push(s.index());
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApplicationBuilder, Cycles, DataKind, Words};

    /// Diamond: k0 -> {k1, k2} -> k3.
    fn diamond() -> Application {
        let mut b = ApplicationBuilder::new("diamond");
        let a = b.data("a", Words::new(4), DataKind::ExternalInput);
        let x = b.data("x", Words::new(4), DataKind::Intermediate);
        let y = b.data("y", Words::new(4), DataKind::Intermediate);
        let z = b.data("z", Words::new(4), DataKind::Intermediate);
        let r = b.data("r", Words::new(4), DataKind::FinalResult);
        b.kernel("k0", 1, Cycles::new(10), &[a], &[x, y]);
        b.kernel("k1", 1, Cycles::new(10), &[x], &[z]);
        b.kernel("k2", 1, Cycles::new(10), &[y], &[]);
        b.kernel("k3", 1, Cycles::new(10), &[z], &[r]);
        // k2 produces nothing; make it consume y only. But y must be
        // consumed (it is) and z flows k1 -> k3.
        b.build().expect("valid")
    }

    #[test]
    fn producers_and_consumers() {
        let app = diamond();
        let df = app.dataflow();
        assert_eq!(df.producer(DataId::new(0)), None);
        assert_eq!(df.producer(DataId::new(1)), Some(KernelId::new(0)));
        assert_eq!(df.consumers(DataId::new(1)), &[KernelId::new(1)]);
        assert_eq!(df.consumers(DataId::new(0)), &[KernelId::new(0)]);
        assert_eq!(
            df.successors(KernelId::new(0)),
            &[KernelId::new(1), KernelId::new(2)]
        );
    }

    #[test]
    fn transitive_dependency() {
        let app = diamond();
        let df = app.dataflow();
        assert!(df.depends_on(KernelId::new(3), KernelId::new(0)));
        assert!(df.depends_on(KernelId::new(3), KernelId::new(1)));
        assert!(!df.depends_on(KernelId::new(3), KernelId::new(2)));
        assert!(!df.depends_on(KernelId::new(0), KernelId::new(3)));
        assert!(df.depends_on(KernelId::new(0), KernelId::new(0)));
    }

    #[test]
    fn order_checking() {
        let app = diamond();
        let df = app.dataflow();
        let ids = |v: &[u32]| v.iter().map(|&i| KernelId::new(i)).collect::<Vec<_>>();
        assert!(df.respects_order(&ids(&[0, 1, 2, 3])));
        assert!(df.respects_order(&ids(&[0, 2, 1, 3])));
        assert!(!df.respects_order(&ids(&[1, 0, 2, 3])));
        assert!(!df.respects_order(&ids(&[0, 3, 1, 2])));
        // Partial orders only check the mentioned kernels.
        assert!(df.respects_order(&ids(&[1, 3])));
        assert!(!df.respects_order(&ids(&[3, 1])));
    }

    #[test]
    fn topological_order_is_valid_and_stable() {
        let app = diamond();
        let df = app.dataflow();
        let order = df.topological_order();
        assert_eq!(order.len(), 4);
        assert!(df.respects_order(&order));
        // Stability: k1 (declared before k2) comes first among the two
        // independent middle kernels.
        let pos = |k: u32| order.iter().position(|&x| x == KernelId::new(k)).unwrap();
        assert!(pos(1) < pos(2));
    }
}
