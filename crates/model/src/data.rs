//! Data objects: the unit of transfer between external memory and the
//! Frame Buffer.

use serde::{Deserialize, Serialize};

use crate::{DataId, Words};

/// Where a data object originates and where it must ultimately live.
///
/// The three kinds drive the scheduler's transfer decisions:
///
/// * [`ExternalInput`](DataKind::ExternalInput) must be loaded from
///   external memory before its first consumer executes;
/// * [`Intermediate`](DataKind::Intermediate) is produced by one kernel
///   and consumed by later kernels — it only needs external-memory
///   traffic when it crosses between clusters that cannot retain it in
///   the Frame Buffer;
/// * [`FinalResult`](DataKind::FinalResult) must be stored to external
///   memory after it is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataKind {
    /// Application input residing in external memory.
    ExternalInput,
    /// Produced by a kernel and consumed by other kernel(s); never needed
    /// outside the application.
    Intermediate,
    /// Produced by a kernel and required in external memory after
    /// execution.
    FinalResult,
}

impl DataKind {
    /// Returns `true` for data that starts in external memory.
    #[must_use]
    pub const fn is_external_input(self) -> bool {
        matches!(self, DataKind::ExternalInput)
    }

    /// Returns `true` for data that must end up in external memory.
    #[must_use]
    pub const fn is_final_result(self) -> bool {
        matches!(self, DataKind::FinalResult)
    }
}

/// A block of data with a known compile-time size.
///
/// The paper targets applications "such that data and result sizes are
/// known before cluster execution, which is the typical case for a wide
/// range of multimedia applications"; a `DataObject` captures exactly
/// that static knowledge. One `DataObject` describes the data of a single
/// iteration — under loop fission with reuse factor `RF`, `RF` instances
/// of it are resident simultaneously.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataObject {
    id: DataId,
    name: String,
    size: Words,
    kind: DataKind,
}

impl DataObject {
    /// Creates a data object. Prefer
    /// [`ApplicationBuilder::data`](crate::ApplicationBuilder::data),
    /// which assigns the id.
    #[must_use]
    pub fn new(id: DataId, name: impl Into<String>, size: Words, kind: DataKind) -> Self {
        DataObject {
            id,
            name: name.into(),
            size,
            kind,
        }
    }

    /// The object's id within its application.
    #[must_use]
    pub fn id(&self) -> DataId {
        self.id
    }

    /// Human-readable name (e.g. `"macroblock"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Size of one iteration's instance, in Frame Buffer words.
    #[must_use]
    pub fn size(&self) -> Words {
        self.size
    }

    /// The object's kind.
    #[must_use]
    pub fn kind(&self) -> DataKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(DataKind::ExternalInput.is_external_input());
        assert!(!DataKind::ExternalInput.is_final_result());
        assert!(DataKind::FinalResult.is_final_result());
        assert!(!DataKind::Intermediate.is_external_input());
        assert!(!DataKind::Intermediate.is_final_result());
    }

    #[test]
    fn data_object_accessors() {
        let d = DataObject::new(
            DataId::new(4),
            "mb",
            Words::new(384),
            DataKind::ExternalInput,
        );
        assert_eq!(d.id(), DataId::new(4));
        assert_eq!(d.name(), "mb");
        assert_eq!(d.size(), Words::new(384));
        assert_eq!(d.kind(), DataKind::ExternalInput);
    }

    #[test]
    fn data_object_serde_roundtrip() {
        let d = DataObject::new(DataId::new(1), "x", Words::new(8), DataKind::Intermediate);
        let json = serde_json::to_string(&d).expect("serialize");
        let back: DataObject = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, d);
    }
}
