//! MorphoSys M1 architecture parameters.

use serde::{Deserialize, Serialize};

use crate::{Application, Cycles, ModelError, Words};

/// Parameters of the target multi-context reconfigurable architecture
/// (MorphoSys M1 by default).
///
/// The schedulers and the simulator share this description:
///
/// * the Frame Buffer has two sets of [`fb_set_words`](Self::fb_set_words)
///   each (the paper sweeps 1K–8K);
/// * the Context Memory holds
///   [`cm_context_words`](Self::cm_context_words) 32-bit context words in
///   two blocks, so loading one block can overlap execution from the
///   other;
/// * the single DMA channel moves one data word per
///   [`data_cycles_per_word`](Self::data_cycles_per_word) cycles and one
///   context word per
///   [`context_cycles_per_word`](Self::context_cycles_per_word) cycles —
///   "simultaneous transfers of data and contexts are not possible";
/// * the TinyRISC control processor adds
///   [`kernel_setup_cycles`](Self::kernel_setup_cycles) per kernel
///   activation.
///
/// # Example
///
/// ```
/// use mcds_model::{ArchParams, Words};
///
/// let m1 = ArchParams::m1();
/// assert_eq!(m1.fb_set_words(), Words::kilo(1));
/// let big = ArchParams::m1().to_builder().fb_set_words(Words::kilo(8)).build();
/// assert_eq!(big.fb_set_words(), Words::kilo(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArchParams {
    fb_set_words: Words,
    cm_context_words: u32,
    cm_blocks: u32,
    data_cycles_per_word: u64,
    context_cycles_per_word: u64,
    kernel_setup_cycles: u64,
    fb_cross_set_access: bool,
}

impl ArchParams {
    /// The first MorphoSys implementation (M1): two 1K-word FB sets, a
    /// 512-context-word CM in two blocks, 1 cycle/word DMA for data and
    /// contexts, 4 control cycles per kernel activation.
    #[must_use]
    pub const fn m1() -> Self {
        ArchParams {
            fb_set_words: Words::kilo(1),
            cm_context_words: 512,
            cm_blocks: 2,
            data_cycles_per_word: 1,
            context_cycles_per_word: 1,
            kernel_setup_cycles: 4,
            fb_cross_set_access: false,
        }
    }

    /// M1 with a different Frame Buffer set size — the paper's
    /// memory-size sweeps (MPEG vs MPEG*, E1 vs E1*, …).
    #[must_use]
    pub fn m1_with_fb(fb_set_words: Words) -> Self {
        ArchParams {
            fb_set_words,
            ..ArchParams::m1()
        }
    }

    /// Capacity of one Frame Buffer set, in words (`FB` in Table 1).
    #[must_use]
    pub fn fb_set_words(&self) -> Words {
        self.fb_set_words
    }

    /// Total Context Memory capacity in 32-bit context words.
    #[must_use]
    pub fn cm_context_words(&self) -> u32 {
        self.cm_context_words
    }

    /// Number of independently loadable Context Memory blocks.
    #[must_use]
    pub fn cm_blocks(&self) -> u32 {
        self.cm_blocks
    }

    /// DMA cost of one data word.
    #[must_use]
    pub fn data_cycles_per_word(&self) -> u64 {
        self.data_cycles_per_word
    }

    /// DMA cost of one context word.
    #[must_use]
    pub fn context_cycles_per_word(&self) -> u64 {
        self.context_cycles_per_word
    }

    /// Control-processor overhead per kernel activation.
    #[must_use]
    pub fn kernel_setup_cycles(&self) -> u64 {
        self.kernel_setup_cycles
    }

    /// Whether the RC array can read data resident in the *other*
    /// Frame Buffer set (a dual-ported FB). `false` on M1; enabling it
    /// unlocks the paper's future-work optimisation, "data and results
    /// reuse among clusters assigned to different sets of the FB when
    /// the architecture allows it".
    #[must_use]
    pub fn fb_cross_set_access(&self) -> bool {
        self.fb_cross_set_access
    }

    /// DMA time to move `words` of data.
    #[must_use]
    pub fn data_transfer_time(&self, words: Words) -> Cycles {
        Cycles::new(words.get() * self.data_cycles_per_word)
    }

    /// DMA time to load `context_words` context words into the CM.
    #[must_use]
    pub fn context_load_time(&self, context_words: u32) -> Cycles {
        Cycles::new(u64::from(context_words) * self.context_cycles_per_word)
    }

    /// Checks that every kernel of `app` fits the Context Memory.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ContextsExceedMemory`] for the first kernel
    /// whose context count exceeds the CM capacity.
    pub fn check_kernels_fit(&self, app: &Application) -> Result<(), ModelError> {
        for k in app.kernels() {
            if k.contexts() > self.cm_context_words {
                return Err(ModelError::ContextsExceedMemory {
                    kernel: k.id(),
                    required: k.contexts(),
                    capacity: self.cm_context_words,
                });
            }
        }
        Ok(())
    }

    /// Starts a builder initialised from `self`.
    #[must_use]
    pub fn to_builder(self) -> ArchParamsBuilder {
        ArchParamsBuilder { params: self }
    }
}

impl Default for ArchParams {
    fn default() -> Self {
        ArchParams::m1()
    }
}

/// Builder for [`ArchParams`] variations.
#[derive(Debug, Clone)]
pub struct ArchParamsBuilder {
    params: ArchParams,
}

impl ArchParamsBuilder {
    /// Starts from the M1 defaults.
    #[must_use]
    pub fn new() -> Self {
        ArchParams::m1().to_builder()
    }

    /// Sets the Frame Buffer set capacity.
    #[must_use]
    pub fn fb_set_words(mut self, words: Words) -> Self {
        self.params.fb_set_words = words;
        self
    }

    /// Sets the Context Memory capacity in context words.
    #[must_use]
    pub fn cm_context_words(mut self, words: u32) -> Self {
        self.params.cm_context_words = words;
        self
    }

    /// Sets the number of CM blocks.
    #[must_use]
    pub fn cm_blocks(mut self, blocks: u32) -> Self {
        self.params.cm_blocks = blocks;
        self
    }

    /// Sets the DMA cost per data word.
    #[must_use]
    pub fn data_cycles_per_word(mut self, cycles: u64) -> Self {
        self.params.data_cycles_per_word = cycles;
        self
    }

    /// Sets the DMA cost per context word.
    #[must_use]
    pub fn context_cycles_per_word(mut self, cycles: u64) -> Self {
        self.params.context_cycles_per_word = cycles;
        self
    }

    /// Sets the per-activation control overhead.
    #[must_use]
    pub fn kernel_setup_cycles(mut self, cycles: u64) -> Self {
        self.params.kernel_setup_cycles = cycles;
        self
    }

    /// Enables or disables cross-set Frame Buffer reads (dual-ported
    /// FB — beyond M1).
    #[must_use]
    pub fn fb_cross_set_access(mut self, enabled: bool) -> Self {
        self.params.fb_cross_set_access = enabled;
        self
    }

    /// Finalises the parameters.
    #[must_use]
    pub fn build(self) -> ArchParams {
        self.params
    }
}

impl Default for ArchParamsBuilder {
    fn default() -> Self {
        ArchParamsBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApplicationBuilder, DataKind};

    #[test]
    fn m1_defaults() {
        let p = ArchParams::m1();
        assert_eq!(p.fb_set_words(), Words::kilo(1));
        assert_eq!(p.cm_context_words(), 512);
        assert_eq!(p.cm_blocks(), 2);
        assert_eq!(p, ArchParams::default());
    }

    #[test]
    fn transfer_times() {
        let p = ArchParamsBuilder::new()
            .data_cycles_per_word(2)
            .context_cycles_per_word(3)
            .build();
        assert_eq!(p.data_transfer_time(Words::new(10)), Cycles::new(20));
        assert_eq!(p.context_load_time(10), Cycles::new(30));
    }

    #[test]
    fn builder_overrides() {
        let p = ArchParamsBuilder::new()
            .fb_set_words(Words::kilo(8))
            .cm_context_words(1024)
            .cm_blocks(4)
            .kernel_setup_cycles(0)
            .build();
        assert_eq!(p.fb_set_words(), Words::kilo(8));
        assert_eq!(p.cm_context_words(), 1024);
        assert_eq!(p.cm_blocks(), 4);
        assert_eq!(p.kernel_setup_cycles(), 0);
    }

    #[test]
    fn m1_with_fb_only_changes_fb() {
        let p = ArchParams::m1_with_fb(Words::kilo(3));
        assert_eq!(p.fb_set_words(), Words::kilo(3));
        assert_eq!(p.cm_context_words(), ArchParams::m1().cm_context_words());
    }

    #[test]
    fn cross_set_access_flag() {
        assert!(!ArchParams::m1().fb_cross_set_access());
        let dual = ArchParamsBuilder::new().fb_cross_set_access(true).build();
        assert!(dual.fb_cross_set_access());
    }

    #[test]
    fn kernels_fit_check() {
        let mut b = ApplicationBuilder::new("big");
        let a = b.data("a", Words::new(1), DataKind::ExternalInput);
        let r = b.data("r", Words::new(1), DataKind::FinalResult);
        b.kernel("huge", 9999, Cycles::new(1), &[a], &[r]);
        let app = b.build().expect("valid");
        let err = ArchParams::m1().check_kernels_fit(&app).unwrap_err();
        assert!(matches!(err, ModelError::ContextsExceedMemory { .. }));

        let big_cm = ArchParamsBuilder::new().cm_context_words(10_000).build();
        assert!(big_cm.check_kernels_fit(&app).is_ok());
    }
}
