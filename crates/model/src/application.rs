//! Applications: dataflow DAGs of kernels executed over a data stream.

use serde::{Deserialize, Serialize};

use crate::graph::DataflowInfo;
use crate::{Cycles, DataId, DataKind, DataObject, Kernel, KernelId, ModelError, Words};

/// A complete application: kernels, the data objects they exchange, and
/// the number of streaming iterations.
///
/// Multimedia and DSP applications "are composed of a sequence of kernels
/// that are consecutively executed over a part of the input data, until
/// all the data are processed"; `iterations` is that outer trip count
/// (`n` in the paper — e.g. the number of macroblocks of a frame).
///
/// Construct with [`ApplicationBuilder`]; a built application is always
/// valid (dense ids, single producers, acyclic dataflow).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    name: String,
    kernels: Vec<Kernel>,
    data: Vec<DataObject>,
    iterations: u64,
}

impl Application {
    /// The application's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All kernels, indexed by [`KernelId`].
    #[must_use]
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// All data objects, indexed by [`DataId`].
    #[must_use]
    pub fn data(&self) -> &[DataObject] {
        &self.data
    }

    /// Number of streaming iterations (`n` in the paper).
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Looks up a kernel by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this application. Untrusted
    /// ids (e.g. from deserialized input) go through
    /// [`try_kernel`](Self::try_kernel) instead.
    #[must_use]
    pub fn kernel(&self, id: KernelId) -> &Kernel {
        self.try_kernel(id)
            .unwrap_or_else(|e| panic!("{e} (of {} kernels)", self.kernels.len()))
    }

    /// Fallible kernel lookup for ids from untrusted sources.
    ///
    /// # Errors
    ///
    /// [`ModelError::NoSuchKernel`] if `id` does not belong to this
    /// application.
    pub fn try_kernel(&self, id: KernelId) -> Result<&Kernel, ModelError> {
        self.kernels
            .get(id.index())
            .ok_or(ModelError::NoSuchKernel(id))
    }

    /// Looks up a data object by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this application. Untrusted
    /// ids go through [`try_data_object`](Self::try_data_object)
    /// instead.
    #[must_use]
    pub fn data_object(&self, id: DataId) -> &DataObject {
        self.try_data_object(id)
            .unwrap_or_else(|e| panic!("{e} (of {} data objects)", self.data.len()))
    }

    /// Fallible data-object lookup for ids from untrusted sources.
    ///
    /// # Errors
    ///
    /// [`ModelError::NoSuchData`] if `id` does not belong to this
    /// application.
    pub fn try_data_object(&self, id: DataId) -> Result<&DataObject, ModelError> {
        self.data.get(id.index()).ok_or(ModelError::NoSuchData(id))
    }

    /// Size of one iteration's instance of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this application. Untrusted
    /// ids go through [`try_size_of`](Self::try_size_of) instead.
    #[must_use]
    pub fn size_of(&self, id: DataId) -> Words {
        self.data_object(id).size()
    }

    /// Fallible size lookup for ids from untrusted sources.
    ///
    /// # Errors
    ///
    /// [`ModelError::NoSuchData`] if `id` does not belong to this
    /// application.
    pub fn try_size_of(&self, id: DataId) -> Result<Words, ModelError> {
        Ok(self.try_data_object(id)?.size())
    }

    /// Computes producer/consumer relations and the kernel dependency
    /// graph. The result borrows nothing and can outlive `self`.
    #[must_use]
    pub fn dataflow(&self) -> DataflowInfo {
        DataflowInfo::compute(self)
    }

    /// Re-runs the builder's validation — use after constructing an
    /// application through Serde, which bypasses
    /// [`ApplicationBuilder::build`]'s checks.
    ///
    /// # Errors
    ///
    /// The same [`ModelError`]s as [`ApplicationBuilder::build`].
    pub fn validate(&self) -> Result<(), ModelError> {
        validate(self)
    }

    /// Total size of one iteration's external inputs, intermediate
    /// results and final results — `DS` ("total data size per iteration")
    /// in Table 1 of the paper.
    #[must_use]
    pub fn total_data_per_iteration(&self) -> Words {
        self.data.iter().map(DataObject::size).sum()
    }

    /// Sum of all kernels' context words.
    #[must_use]
    pub fn total_contexts(&self) -> u32 {
        self.kernels.iter().map(Kernel::contexts).sum()
    }
}

/// Incrementally builds a valid [`Application`].
///
/// # Example
///
/// ```
/// use mcds_model::{ApplicationBuilder, DataKind, Words, Cycles};
///
/// # fn main() -> Result<(), mcds_model::ModelError> {
/// let mut b = ApplicationBuilder::new("pipeline");
/// let raw = b.data("raw", Words::new(128), DataKind::ExternalInput);
/// let mid = b.data("mid", Words::new(64), DataKind::Intermediate);
/// let out = b.data("out", Words::new(64), DataKind::FinalResult);
/// let k0 = b.kernel("stage0", 8, Cycles::new(200), &[raw], &[mid]);
/// let k1 = b.kernel("stage1", 8, Cycles::new(180), &[mid], &[out]);
/// let app = b.iterations(64).build()?;
/// assert_eq!(app.dataflow().producer(mid), Some(k0));
/// assert_eq!(app.dataflow().consumers(mid), &[k1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ApplicationBuilder {
    name: String,
    kernels: Vec<Kernel>,
    data: Vec<DataObject>,
    iterations: u64,
    /// Set once a declaration would overflow the `u32` id space; the
    /// builder keeps accepting calls (ids saturate) and [`build`]
    /// reports the overflow as a typed error.
    ///
    /// [`build`]: ApplicationBuilder::build
    overflowed: bool,
}

impl ApplicationBuilder {
    /// Starts building an application with the given name and a default
    /// of one iteration.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ApplicationBuilder {
            name: name.into(),
            kernels: Vec::new(),
            data: Vec::new(),
            iterations: 1,
            overflowed: false,
        }
    }

    /// Declares a data object and returns its id.
    pub fn data(&mut self, name: impl Into<String>, size: Words, kind: DataKind) -> DataId {
        let Ok(index) = u32::try_from(self.data.len()) else {
            self.overflowed = true;
            return DataId::new(u32::MAX);
        };
        let id = DataId::new(index);
        self.data.push(DataObject::new(id, name, size, kind));
        id
    }

    /// Declares a kernel and returns its id. Kernel declaration order is
    /// the default program order.
    pub fn kernel(
        &mut self,
        name: impl Into<String>,
        contexts: u32,
        exec_cycles: Cycles,
        inputs: &[DataId],
        outputs: &[DataId],
    ) -> KernelId {
        let Ok(index) = u32::try_from(self.kernels.len()) else {
            self.overflowed = true;
            return KernelId::new(u32::MAX);
        };
        let id = KernelId::new(index);
        self.kernels.push(Kernel::new(
            id,
            name,
            contexts,
            exec_cycles,
            inputs.to_vec(),
            outputs.to_vec(),
        ));
        id
    }

    /// Sets the streaming iteration count (`n` in the paper).
    #[must_use]
    pub fn iterations(mut self, n: u64) -> Self {
        self.iterations = n;
        self
    }

    /// Validates and finalises the application.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the application is empty, runs zero
    /// iterations, references unknown or zero-sized data, has duplicate
    /// or missing producers, produces an external input, leaves an
    /// intermediate result unconsumed, contains a dependency cycle, or
    /// declared more objects than the `u32` id space holds.
    pub fn build(self) -> Result<Application, ModelError> {
        if self.overflowed {
            return Err(ModelError::IdSpaceExhausted);
        }
        let app = Application {
            name: self.name,
            kernels: self.kernels,
            data: self.data,
            iterations: self.iterations,
        };
        validate(&app)?;
        Ok(app)
    }
}

fn validate(app: &Application) -> Result<(), ModelError> {
    if app.kernels.is_empty() {
        return Err(ModelError::NoKernels);
    }
    if app.iterations == 0 {
        return Err(ModelError::ZeroIterations);
    }
    for d in &app.data {
        if d.size().is_zero() {
            return Err(ModelError::ZeroSizeData(d.id()));
        }
    }

    let n_data = app.data.len();
    let mut producer: Vec<Option<KernelId>> = vec![None; n_data];
    let mut consumed: Vec<bool> = vec![false; n_data];

    for k in &app.kernels {
        for group in [k.inputs(), k.outputs()] {
            let mut seen = Vec::with_capacity(group.len());
            for &d in group {
                if d.index() >= n_data {
                    return Err(ModelError::UnknownData {
                        kernel: k.id(),
                        data: d,
                    });
                }
                if seen.contains(&d) {
                    return Err(ModelError::DuplicateReference {
                        kernel: k.id(),
                        data: d,
                    });
                }
                seen.push(d);
            }
        }
        for &d in k.inputs() {
            consumed[d.index()] = true;
        }
        for &d in k.outputs() {
            if app.data[d.index()].kind().is_external_input() {
                return Err(ModelError::ProducedInput {
                    kernel: k.id(),
                    data: d,
                });
            }
            match producer[d.index()] {
                None => producer[d.index()] = Some(k.id()),
                Some(first) => {
                    return Err(ModelError::MultipleProducers {
                        data: d,
                        first,
                        second: k.id(),
                    })
                }
            }
        }
    }

    for d in &app.data {
        match d.kind() {
            DataKind::ExternalInput => {}
            DataKind::Intermediate => {
                if producer[d.id().index()].is_none() {
                    return Err(ModelError::NoProducer(d.id()));
                }
                if !consumed[d.id().index()] {
                    return Err(ModelError::DeadIntermediate(d.id()));
                }
            }
            DataKind::FinalResult => {
                if producer[d.id().index()].is_none() {
                    return Err(ModelError::NoProducer(d.id()));
                }
            }
        }
    }

    // Cycle detection over the kernel dependency graph via Kahn's
    // algorithm.
    let n = app.kernels.len();
    let mut indeg = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for k in &app.kernels {
        for &d in k.inputs() {
            if let Some(p) = producer[d.index()] {
                succs[p.index()].push(k.id().index());
                indeg[k.id().index()] += 1;
            }
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut visited = 0;
    while let Some(i) = ready.pop() {
        visited += 1;
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    if visited != n {
        return Err(ModelError::DependencyCycle);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_stage() -> ApplicationBuilder {
        let mut b = ApplicationBuilder::new("t");
        let a = b.data("a", Words::new(10), DataKind::ExternalInput);
        let m = b.data("m", Words::new(5), DataKind::Intermediate);
        let r = b.data("r", Words::new(5), DataKind::FinalResult);
        b.kernel("k0", 4, Cycles::new(100), &[a], &[m]);
        b.kernel("k1", 4, Cycles::new(100), &[m], &[r]);
        b
    }

    #[test]
    fn builds_valid_application() {
        let app = three_stage().iterations(10).build().expect("valid");
        assert_eq!(app.name(), "t");
        assert_eq!(app.kernels().len(), 2);
        assert_eq!(app.data().len(), 3);
        assert_eq!(app.iterations(), 10);
        assert_eq!(app.total_data_per_iteration(), Words::new(20));
        assert_eq!(app.total_contexts(), 8);
        assert_eq!(app.kernel(KernelId::new(1)).name(), "k1");
        assert_eq!(app.data_object(DataId::new(0)).name(), "a");
        assert_eq!(app.size_of(DataId::new(1)), Words::new(5));
    }

    #[test]
    fn foreign_ids_are_typed_errors_not_panics() {
        let app = three_stage().iterations(10).build().expect("valid");
        assert_eq!(
            app.try_kernel(KernelId::new(9)).unwrap_err(),
            ModelError::NoSuchKernel(KernelId::new(9))
        );
        assert_eq!(
            app.try_data_object(DataId::new(9)).unwrap_err(),
            ModelError::NoSuchData(DataId::new(9))
        );
        assert_eq!(
            app.try_size_of(DataId::new(9)).unwrap_err(),
            ModelError::NoSuchData(DataId::new(9))
        );
        assert_eq!(
            app.try_kernel(KernelId::new(0)).expect("valid id").name(),
            "k0"
        );
        assert_eq!(
            app.try_size_of(DataId::new(2)).expect("valid id"),
            Words::new(5)
        );
    }

    #[test]
    fn rejects_empty() {
        let b = ApplicationBuilder::new("e");
        assert_eq!(b.build().unwrap_err(), ModelError::NoKernels);
    }

    #[test]
    fn rejects_zero_iterations() {
        let b = three_stage().iterations(0);
        assert_eq!(b.build().unwrap_err(), ModelError::ZeroIterations);
    }

    #[test]
    fn rejects_zero_size_data() {
        let mut b = ApplicationBuilder::new("z");
        let a = b.data("a", Words::ZERO, DataKind::ExternalInput);
        let r = b.data("r", Words::new(1), DataKind::FinalResult);
        b.kernel("k", 1, Cycles::new(1), &[a], &[r]);
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::ZeroSizeData(DataId::new(0))
        );
    }

    #[test]
    fn rejects_unknown_data() {
        let mut b = ApplicationBuilder::new("u");
        let a = b.data("a", Words::new(1), DataKind::ExternalInput);
        let r = b.data("r", Words::new(1), DataKind::FinalResult);
        b.kernel("k", 1, Cycles::new(1), &[a, DataId::new(99)], &[r]);
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::UnknownData { .. }
        ));
    }

    #[test]
    fn rejects_duplicate_reference() {
        let mut b = ApplicationBuilder::new("d");
        let a = b.data("a", Words::new(1), DataKind::ExternalInput);
        let r = b.data("r", Words::new(1), DataKind::FinalResult);
        b.kernel("k", 1, Cycles::new(1), &[a, a], &[r]);
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::DuplicateReference { .. }
        ));
    }

    #[test]
    fn rejects_multiple_producers() {
        let mut b = ApplicationBuilder::new("m");
        let a = b.data("a", Words::new(1), DataKind::ExternalInput);
        let r = b.data("r", Words::new(1), DataKind::FinalResult);
        b.kernel("k0", 1, Cycles::new(1), &[a], &[r]);
        b.kernel("k1", 1, Cycles::new(1), &[a], &[r]);
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::MultipleProducers { .. }
        ));
    }

    #[test]
    fn rejects_no_producer() {
        let mut b = ApplicationBuilder::new("n");
        let a = b.data("a", Words::new(1), DataKind::ExternalInput);
        let orphan = b.data("o", Words::new(1), DataKind::FinalResult);
        let r = b.data("r", Words::new(1), DataKind::FinalResult);
        b.kernel("k", 1, Cycles::new(1), &[a], &[r]);
        let _ = orphan;
        assert!(matches!(b.build().unwrap_err(), ModelError::NoProducer(_)));
    }

    #[test]
    fn rejects_produced_input() {
        let mut b = ApplicationBuilder::new("p");
        let a = b.data("a", Words::new(1), DataKind::ExternalInput);
        b.kernel("k", 1, Cycles::new(1), &[], &[a]);
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::ProducedInput { .. }
        ));
    }

    #[test]
    fn rejects_dead_intermediate() {
        let mut b = ApplicationBuilder::new("di");
        let a = b.data("a", Words::new(1), DataKind::ExternalInput);
        let m = b.data("m", Words::new(1), DataKind::Intermediate);
        let r = b.data("r", Words::new(1), DataKind::FinalResult);
        b.kernel("k", 1, Cycles::new(1), &[a], &[m, r]);
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::DeadIntermediate(_)
        ));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = ApplicationBuilder::new("c");
        let x = b.data("x", Words::new(1), DataKind::Intermediate);
        let y = b.data("y", Words::new(1), DataKind::Intermediate);
        b.kernel("k0", 1, Cycles::new(1), &[y], &[x]);
        b.kernel("k1", 1, Cycles::new(1), &[x], &[y]);
        assert_eq!(b.build().unwrap_err(), ModelError::DependencyCycle);
    }

    #[test]
    fn deserialized_app_can_be_revalidated() {
        let app = three_stage().iterations(3).build().expect("valid");
        let json = serde_json::to_string(&app).expect("serialize");
        let back: Application = serde_json::from_str(&json).expect("deserialize");
        assert!(back.validate().is_ok());
        // Tampered JSON (zero iterations) deserializes but fails
        // revalidation.
        let tampered = json.replace("\"iterations\":3", "\"iterations\":0");
        let broken: Application = serde_json::from_str(&tampered).expect("deserialize");
        assert_eq!(broken.validate().unwrap_err(), ModelError::ZeroIterations);
    }

    #[test]
    fn serde_roundtrip() {
        let app = three_stage().iterations(7).build().expect("valid");
        let json = serde_json::to_string(&app).expect("serialize");
        let back: Application = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, app);
    }
}
