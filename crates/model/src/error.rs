//! Error type for model construction and validation.

use std::error::Error;
use std::fmt;

use crate::{ClusterId, DataId, KernelId};

/// Errors raised while building or validating an
/// [`Application`](crate::Application) or a
/// [`ClusterSchedule`](crate::ClusterSchedule).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// An application must contain at least one kernel.
    NoKernels,
    /// The application must execute at least one iteration.
    ZeroIterations,
    /// A data object has size zero.
    ZeroSizeData(DataId),
    /// A kernel references a data object that does not exist.
    UnknownData {
        /// The referencing kernel.
        kernel: KernelId,
        /// The dangling reference.
        data: DataId,
    },
    /// A kernel lists the same data object twice among its inputs or
    /// outputs.
    DuplicateReference {
        /// The offending kernel.
        kernel: KernelId,
        /// The repeated data object.
        data: DataId,
    },
    /// Two kernels claim to produce the same data object.
    MultipleProducers {
        /// The doubly-produced data object.
        data: DataId,
        /// The first producer encountered.
        first: KernelId,
        /// The second producer encountered.
        second: KernelId,
    },
    /// An intermediate or final result has no producer.
    NoProducer(DataId),
    /// An external input is listed as a kernel output.
    ProducedInput {
        /// The producing kernel.
        kernel: KernelId,
        /// The external input it claims to produce.
        data: DataId,
    },
    /// An intermediate result is never consumed.
    DeadIntermediate(DataId),
    /// The kernel dataflow contains a cycle.
    DependencyCycle,
    /// A cluster schedule contains an empty cluster.
    EmptyCluster(ClusterId),
    /// A kernel appears in more than one cluster (or twice in one).
    KernelRepeated(KernelId),
    /// A kernel of the application appears in no cluster.
    KernelMissing(KernelId),
    /// The cluster schedule executes a consumer before its producer.
    OrderViolation {
        /// The producing kernel (scheduled too late).
        producer: KernelId,
        /// The consuming kernel (scheduled too early).
        consumer: KernelId,
    },
    /// A kernel id does not belong to the application it was used with
    /// (e.g. an id from a different, deserialized application).
    NoSuchKernel(KernelId),
    /// A data id does not belong to the application it was used with.
    NoSuchData(DataId),
    /// The application declares more kernels, data objects or clusters
    /// than the `u32` id space can name — a degenerate input (e.g. a
    /// runaway generator), rejected with a typed error instead of a
    /// panic.
    IdSpaceExhausted,
    /// A kernel needs more contexts than the Context Memory holds.
    ContextsExceedMemory {
        /// The oversized kernel.
        kernel: KernelId,
        /// Context words required.
        required: u32,
        /// Context Memory capacity in context words.
        capacity: u32,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoKernels => write!(f, "application has no kernels"),
            ModelError::ZeroIterations => write!(f, "application executes zero iterations"),
            ModelError::ZeroSizeData(d) => write!(f, "data object {d} has size zero"),
            ModelError::UnknownData { kernel, data } => {
                write!(f, "kernel {kernel} references unknown data object {data}")
            }
            ModelError::DuplicateReference { kernel, data } => {
                write!(f, "kernel {kernel} references data object {data} twice")
            }
            ModelError::MultipleProducers {
                data,
                first,
                second,
            } => write!(
                f,
                "data object {data} is produced by both {first} and {second}"
            ),
            ModelError::NoProducer(d) => {
                write!(f, "non-input data object {d} has no producer")
            }
            ModelError::ProducedInput { kernel, data } => write!(
                f,
                "kernel {kernel} lists external input {data} as an output"
            ),
            ModelError::DeadIntermediate(d) => {
                write!(f, "intermediate result {d} is never consumed")
            }
            ModelError::DependencyCycle => write!(f, "kernel dataflow contains a cycle"),
            ModelError::EmptyCluster(c) => write!(f, "cluster {c} is empty"),
            ModelError::KernelRepeated(k) => {
                write!(f, "kernel {k} appears more than once in the schedule")
            }
            ModelError::KernelMissing(k) => {
                write!(f, "kernel {k} appears in no cluster of the schedule")
            }
            ModelError::OrderViolation { producer, consumer } => write!(
                f,
                "schedule executes consumer {consumer} before producer {producer}"
            ),
            ModelError::IdSpaceExhausted => {
                write!(f, "application exceeds the u32 id space")
            }
            ModelError::NoSuchKernel(k) => {
                write!(f, "kernel {k} does not belong to this application")
            }
            ModelError::NoSuchData(d) => {
                write!(f, "data object {d} does not belong to this application")
            }
            ModelError::ContextsExceedMemory {
                kernel,
                required,
                capacity,
            } => write!(
                f,
                "kernel {kernel} needs {required} context words but the context memory holds {capacity}"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_period() {
        let cases: Vec<ModelError> = vec![
            ModelError::NoKernels,
            ModelError::ZeroIterations,
            ModelError::ZeroSizeData(DataId::new(1)),
            ModelError::UnknownData {
                kernel: KernelId::new(0),
                data: DataId::new(9),
            },
            ModelError::DependencyCycle,
            ModelError::EmptyCluster(ClusterId::new(2)),
            ModelError::OrderViolation {
                producer: KernelId::new(1),
                consumer: KernelId::new(0),
            },
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "message ends with period: {msg}");
            assert!(
                msg.chars().next().is_some_and(|c| c.is_lowercase()),
                "message not lowercase: {msg}"
            );
        }
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_: &(dyn Error + Send + Sync)) {}
        takes_err(&ModelError::NoKernels);
    }
}
