//! Domain model for the MorphoSys M1 multi-context reconfigurable
//! architecture and the applications scheduled onto it.
//!
//! This crate is the foundation of the `mcds` workspace, a reproduction of
//! *"A Complete Data Scheduler for Multi-Context Reconfigurable
//! Architectures"* (Sanchez-Elez et al., DATE 2002). It defines:
//!
//! * [`Kernel`] — a macro-task characterised by its contexts, execution
//!   time and its input/output data (the abstraction level of the paper);
//! * [`DataObject`] — a block of data moved between external memory and
//!   the on-chip Frame Buffer (FB);
//! * [`Application`] — a dataflow DAG of kernels executed over a stream of
//!   iterations;
//! * [`Cluster`] / [`ClusterSchedule`] — the output of the kernel
//!   scheduler: groups of consecutively executed kernels assigned to
//!   alternating FB sets;
//! * [`ArchParams`] — the MorphoSys M1 architecture parameters (FB set
//!   size, context memory capacity, DMA costs).
//!
//! # Example
//!
//! ```
//! use mcds_model::{ApplicationBuilder, DataKind, Words, Cycles};
//!
//! # fn main() -> Result<(), mcds_model::ModelError> {
//! let mut b = ApplicationBuilder::new("fir");
//! let input = b.data("samples", Words::new(64), DataKind::ExternalInput);
//! let taps = b.data("taps", Words::new(16), DataKind::ExternalInput);
//! let out = b.data("filtered", Words::new(64), DataKind::FinalResult);
//! b.kernel("fir", 8, Cycles::new(256), &[input, taps], &[out]);
//! let app = b.iterations(128).build()?;
//! assert_eq!(app.kernels().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod application;
mod arch;
mod cluster;
mod data;
mod error;
mod graph;
mod ids;
mod kernel;
mod units;

pub use application::{Application, ApplicationBuilder};
pub use arch::{ArchParams, ArchParamsBuilder};
pub use cluster::{Cluster, ClusterSchedule, FbSet};
pub use data::{DataKind, DataObject};
pub use error::ModelError;
pub use graph::DataflowInfo;
pub use ids::{ClusterId, DataId, KernelId};
pub use kernel::Kernel;
pub use units::{Cycles, Words};
