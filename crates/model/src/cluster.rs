//! Clusters and cluster schedules: the kernel scheduler's output.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Application, ClusterId, KernelId, ModelError};

/// One of the two sets of the MorphoSys Frame Buffer.
///
/// "This buffer has two sets to enable overlapping of computation with
/// data transfers": while one set feeds the RC array, the DMA fills and
/// drains the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FbSet {
    /// Frame Buffer set 0.
    Set0,
    /// Frame Buffer set 1.
    Set1,
}

impl FbSet {
    /// The other set.
    #[must_use]
    pub const fn other(self) -> FbSet {
        match self {
            FbSet::Set0 => FbSet::Set1,
            FbSet::Set1 => FbSet::Set0,
        }
    }

    /// Index (0 or 1) of the set.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            FbSet::Set0 => 0,
            FbSet::Set1 => 1,
        }
    }
}

impl fmt::Display for FbSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FB{}", self.index())
    }
}

/// A set of kernels assigned to the same Frame Buffer set "whose
/// components are consecutively executed".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    id: ClusterId,
    kernels: Vec<KernelId>,
}

impl Cluster {
    /// Creates a cluster. Prefer [`ClusterSchedule::new`], which assigns
    /// ids and validates.
    #[must_use]
    pub fn new(id: ClusterId, kernels: Vec<KernelId>) -> Self {
        Cluster { id, kernels }
    }

    /// The cluster's id (its position in the schedule).
    #[must_use]
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// Kernels in execution order.
    #[must_use]
    pub fn kernels(&self) -> &[KernelId] {
        &self.kernels
    }

    /// Number of kernels in the cluster.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Returns `true` if the cluster has no kernels (invalid once
    /// scheduled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Returns `true` if `kernel` belongs to this cluster.
    #[must_use]
    pub fn contains(&self, kernel: KernelId) -> bool {
        self.kernels.contains(&kernel)
    }

    /// Position of `kernel` within the cluster, if present.
    #[must_use]
    pub fn position(&self, kernel: KernelId) -> Option<usize> {
        self.kernels.iter().position(|&k| k == kernel)
    }
}

/// An ordered set of clusters with alternating Frame Buffer set
/// assignment: "while the first cluster is being executed using data of
/// one FB set, the contexts and data of the other cluster kernels are
/// being transferred".
///
/// # Example
///
/// ```
/// use mcds_model::{ApplicationBuilder, ClusterSchedule, DataKind, FbSet, Words, Cycles};
///
/// # fn main() -> Result<(), mcds_model::ModelError> {
/// let mut b = ApplicationBuilder::new("x");
/// let a = b.data("a", Words::new(4), DataKind::ExternalInput);
/// let m = b.data("m", Words::new(4), DataKind::Intermediate);
/// let r = b.data("r", Words::new(4), DataKind::FinalResult);
/// let k0 = b.kernel("k0", 1, Cycles::new(10), &[a], &[m]);
/// let k1 = b.kernel("k1", 1, Cycles::new(10), &[m], &[r]);
/// let app = b.build()?;
/// let sched = ClusterSchedule::new(&app, vec![vec![k0], vec![k1]])?;
/// assert_eq!(sched.fb_set(sched.clusters()[0].id()), FbSet::Set0);
/// assert_eq!(sched.fb_set(sched.clusters()[1].id()), FbSet::Set1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSchedule {
    clusters: Vec<Cluster>,
}

impl ClusterSchedule {
    /// Builds and validates a schedule from a partition of the
    /// application's kernels.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if any cluster is empty, a kernel is
    /// repeated or missing, or the concatenated execution order violates
    /// a dataflow dependency.
    pub fn new(app: &Application, partition: Vec<Vec<KernelId>>) -> Result<Self, ModelError> {
        let mut clusters: Vec<Cluster> = Vec::with_capacity(partition.len());
        for (i, ks) in partition.into_iter().enumerate() {
            let Ok(index) = u32::try_from(i) else {
                return Err(ModelError::IdSpaceExhausted);
            };
            clusters.push(Cluster::new(ClusterId::new(index), ks));
        }
        let schedule = ClusterSchedule { clusters };
        schedule.validate(app)?;
        Ok(schedule)
    }

    fn validate(&self, app: &Application) -> Result<(), ModelError> {
        let mut seen = vec![false; app.kernels().len()];
        let mut flat = Vec::with_capacity(app.kernels().len());
        for c in &self.clusters {
            if c.is_empty() {
                return Err(ModelError::EmptyCluster(c.id()));
            }
            for &k in c.kernels() {
                if k.index() >= seen.len() {
                    return Err(ModelError::KernelMissing(k));
                }
                if std::mem::replace(&mut seen[k.index()], true) {
                    return Err(ModelError::KernelRepeated(k));
                }
                flat.push(k);
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            // `seen` is indexed by validated kernel ids, so the position
            // always fits; degenerate input still gets a typed error.
            let Ok(index) = u32::try_from(missing) else {
                return Err(ModelError::IdSpaceExhausted);
            };
            return Err(ModelError::KernelMissing(KernelId::new(index)));
        }
        let df = app.dataflow();
        if !df.respects_order(&flat) {
            // Locate one offending pair for the error message.
            let mut pos = vec![usize::MAX; app.kernels().len()];
            for (i, &k) in flat.iter().enumerate() {
                pos[k.index()] = i;
            }
            for p in app.kernels() {
                for &c in df.successors(p.id()) {
                    if pos[c.index()] < pos[p.id().index()] {
                        return Err(ModelError::OrderViolation {
                            producer: p.id(),
                            consumer: c,
                        });
                    }
                }
            }
            unreachable!("respects_order() disagreed with pairwise scan");
        }
        Ok(())
    }

    /// The clusters in execution order.
    #[must_use]
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of clusters (`N` in Table 1 of the paper).
    #[must_use]
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Returns `true` if the schedule has no clusters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Looks up a cluster by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// The Frame Buffer set a cluster executes from: clusters alternate,
    /// even positions on [`FbSet::Set0`], odd on [`FbSet::Set1`].
    #[must_use]
    pub fn fb_set(&self, id: ClusterId) -> FbSet {
        if id.index().is_multiple_of(2) {
            FbSet::Set0
        } else {
            FbSet::Set1
        }
    }

    /// Clusters assigned to `set`, in execution order.
    pub fn clusters_on(&self, set: FbSet) -> impl Iterator<Item = &Cluster> + '_ {
        self.clusters
            .iter()
            .filter(move |c| self.fb_set(c.id()) == set)
    }

    /// The cluster containing `kernel`, if any.
    #[must_use]
    pub fn cluster_of(&self, kernel: KernelId) -> Option<ClusterId> {
        self.clusters
            .iter()
            .find(|c| c.contains(kernel))
            .map(Cluster::id)
    }

    /// Maximum kernels per cluster (`n` in Table 1 of the paper).
    #[must_use]
    pub fn max_kernels_per_cluster(&self) -> usize {
        self.clusters.iter().map(Cluster::len).max().unwrap_or(0)
    }

    /// One cluster per kernel, in declaration order — the trivial
    /// schedule used when no clustering information exists.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if declaration order violates a
    /// dependency.
    pub fn singletons(app: &Application) -> Result<Self, ModelError> {
        ClusterSchedule::new(app, app.kernels().iter().map(|k| vec![k.id()]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApplicationBuilder, Cycles, DataKind, Words};

    fn chain(n: usize) -> Application {
        let mut b = ApplicationBuilder::new("chain");
        let mut prev = b.data("in", Words::new(4), DataKind::ExternalInput);
        for i in 0..n {
            let kind = if i + 1 == n {
                DataKind::FinalResult
            } else {
                DataKind::Intermediate
            };
            let next = b.data(format!("d{i}"), Words::new(4), kind);
            b.kernel(format!("k{i}"), 1, Cycles::new(10), &[prev], &[next]);
            prev = next;
        }
        b.build().expect("valid")
    }

    #[test]
    fn valid_partition() {
        let app = chain(5);
        let ks: Vec<KernelId> = app.kernels().iter().map(|k| k.id()).collect();
        let sched = ClusterSchedule::new(&app, vec![vec![ks[0], ks[1]], vec![ks[2], ks[3], ks[4]]])
            .expect("valid");
        assert_eq!(sched.len(), 2);
        assert_eq!(sched.max_kernels_per_cluster(), 3);
        assert_eq!(sched.fb_set(ClusterId::new(0)), FbSet::Set0);
        assert_eq!(sched.fb_set(ClusterId::new(1)), FbSet::Set1);
        assert_eq!(sched.cluster_of(ks[3]), Some(ClusterId::new(1)));
        assert_eq!(sched.cluster(ClusterId::new(0)).len(), 2);
        assert_eq!(sched.cluster(ClusterId::new(0)).position(ks[1]), Some(1));
    }

    #[test]
    fn clusters_on_alternate_sets() {
        let app = chain(4);
        let sched = ClusterSchedule::singletons(&app).expect("valid");
        let on0: Vec<ClusterId> = sched.clusters_on(FbSet::Set0).map(Cluster::id).collect();
        let on1: Vec<ClusterId> = sched.clusters_on(FbSet::Set1).map(Cluster::id).collect();
        assert_eq!(on0, vec![ClusterId::new(0), ClusterId::new(2)]);
        assert_eq!(on1, vec![ClusterId::new(1), ClusterId::new(3)]);
    }

    #[test]
    fn rejects_empty_cluster() {
        let app = chain(2);
        let ks: Vec<KernelId> = app.kernels().iter().map(|k| k.id()).collect();
        let err = ClusterSchedule::new(&app, vec![vec![ks[0], ks[1]], vec![]]).unwrap_err();
        assert_eq!(err, ModelError::EmptyCluster(ClusterId::new(1)));
    }

    #[test]
    fn rejects_repeated_kernel() {
        let app = chain(2);
        let ks: Vec<KernelId> = app.kernels().iter().map(|k| k.id()).collect();
        let err = ClusterSchedule::new(&app, vec![vec![ks[0]], vec![ks[0], ks[1]]]).unwrap_err();
        assert_eq!(err, ModelError::KernelRepeated(ks[0]));
    }

    #[test]
    fn rejects_missing_kernel() {
        let app = chain(2);
        let ks: Vec<KernelId> = app.kernels().iter().map(|k| k.id()).collect();
        let err = ClusterSchedule::new(&app, vec![vec![ks[0]]]).unwrap_err();
        assert_eq!(err, ModelError::KernelMissing(ks[1]));
    }

    #[test]
    fn rejects_order_violation() {
        let app = chain(2);
        let ks: Vec<KernelId> = app.kernels().iter().map(|k| k.id()).collect();
        let err = ClusterSchedule::new(&app, vec![vec![ks[1]], vec![ks[0]]]).unwrap_err();
        assert_eq!(
            err,
            ModelError::OrderViolation {
                producer: ks[0],
                consumer: ks[1],
            }
        );
    }

    #[test]
    fn fb_set_other() {
        assert_eq!(FbSet::Set0.other(), FbSet::Set1);
        assert_eq!(FbSet::Set1.other(), FbSet::Set0);
        assert_eq!(FbSet::Set0.to_string(), "FB0");
    }
}
