//! The full compilation framework, end to end (the paper's Figure 2):
//! application → kernel scheduler → Complete Data Scheduler → code
//! generator, printing the final transfer program with concrete Frame
//! Buffer addresses.
//!
//! ```sh
//! cargo run --example codegen_program
//! ```

use mcds_core::{generate_program, CodeOp, Pipeline, SchedulerKind};
use mcds_ksched::{KernelScheduler, Objective, SearchStrategy};
use mcds_model::{ApplicationBuilder, ArchParams, Cycles, DataKind, Words};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small radar pre-processing chain: window + FFT + magnitude +
    // CFAR detection, with the window coefficients reused by the
    // detector for normalisation.
    let mut b = ApplicationBuilder::new("radar");
    let coeffs = b.data("coeffs", Words::new(128), DataKind::ExternalInput);
    let pulse = b.data("pulse", Words::new(256), DataKind::ExternalInput);
    let windowed = b.data("windowed", Words::new(256), DataKind::Intermediate);
    let spectrum = b.data("spectrum", Words::new(256), DataKind::Intermediate);
    let mag = b.data("mag", Words::new(128), DataKind::Intermediate);
    let hits = b.data("hits", Words::new(64), DataKind::FinalResult);
    b.kernel(
        "window",
        96,
        Cycles::new(180),
        &[pulse, coeffs],
        &[windowed],
    );
    b.kernel("fft", 256, Cycles::new(420), &[windowed], &[spectrum]);
    b.kernel("mag", 64, Cycles::new(120), &[spectrum], &[mag]);
    b.kernel("cfar", 128, Cycles::new(200), &[mag, coeffs], &[hits]);
    let app = b.iterations(64).build()?;

    // One pipeline covers stages 1 and 2: kernel scheduling (exhaustive
    // partition search with the exact CDS objective) followed by data
    // scheduling and simulation.
    let pipeline = Pipeline::new(app)
        .arch(ArchParams::m1())
        .clustering(
            KernelScheduler::new(SearchStrategy::Exhaustive).with_objective(Objective::SimulateCds),
        )
        .scheduler(SchedulerKind::Cds);
    let run = pipeline.run()?;
    let (app, sched, plan) = (pipeline.app(), run.schedule(), run.plan());
    println!("kernel schedule ({} clusters):", sched.len());
    for c in sched.clusters() {
        let names: Vec<&str> = c.kernels().iter().map(|&k| app.kernel(k).name()).collect();
        println!("  {} on {}: {:?}", c.id(), sched.fb_set(c.id()), names);
    }

    println!(
        "\nCDS plan: RF={} DT={}/iter time={}\n",
        plan.rf(),
        plan.dt_avoided_per_iter(),
        run.report().total()
    );

    // 3. Code generation.
    let prog = generate_program(app, sched, plan)?;
    println!("; warm-up round ({} instructions)", prog.warmup().len());
    for op in prog.warmup() {
        println!("  {}", op.display(app));
    }
    println!(
        "\n; steady-state round, executed {} more times",
        prog.steady_rounds()
    );
    for op in prog.steady() {
        println!("  {}", op.display(app));
    }

    let dma_ins = prog
        .steady()
        .iter()
        .filter(|o| matches!(o, CodeOp::DmaIn { .. }))
        .count();
    println!(
        "\n{} input DMAs per steady round; {} instructions if fully unrolled",
        dma_ins,
        prog.unrolled_len()
    );
    Ok(())
}
