//! ATR-SLD under three kernel schedules: how cluster formation changes
//! what the Complete Data Scheduler can retain.
//!
//! The template bank (3K words) is read by all four correlation
//! kernels. Depending on how kernels are grouped into clusters, the
//! bank's consumers land on one Frame Buffer set (retainable) or are
//! split across both (not retainable) — the spread of CDS improvements
//! across the paper's ATR-SLD / ATR-SLD* / ATR-SLD** rows.
//!
//! ```sh
//! cargo run --example atr_scheduling
//! ```

use mcds_core::{McdsError, Pipeline};
use mcds_model::{ArchParams, Words};
use mcds_workloads::atr::{atr_sld_app, atr_sld_schedule, SldSchedule};

fn main() -> Result<(), McdsError> {
    let app = atr_sld_app(32)?;
    let arch = ArchParams::m1_with_fb(Words::kilo(8));
    println!("ATR-SLD: 4 chips x template correlation, bank = 3K words, FB = 8K\n");

    for (label, which) in [
        ("per-chip clusters (ATR-SLD*)", SldSchedule::PerChip),
        ("unbalanced split (ATR-SLD)", SldSchedule::Unbalanced),
        ("skewed split (ATR-SLD**)", SldSchedule::Skewed),
        ("paired chips (minimal sharing)", SldSchedule::Paired),
    ] {
        let sched = atr_sld_schedule(&app, which)?;
        let pipeline = Pipeline::new(app.clone()).arch(arch).schedule(sched);
        let cmp = pipeline.compare()?;
        let comparison = cmp.comparison();
        let (cds, t_cds) = comparison.cds.as_ref().map_err(|e| e.clone())?;
        let (_, t_basic) = comparison.basic.as_ref().map_err(|e| e.clone())?;
        let (_, t_ds) = comparison.ds.as_ref().map_err(|e| e.clone())?;

        println!("== {label}: {} clusters ==", cmp.schedule().len());
        println!(
            "   DT retained/iteration: {} across {} shared objects",
            cds.dt_avoided_per_iter(),
            cds.retention().candidates().len()
        );
        for cand in cds.retention().candidates() {
            println!(
                "     - {} on {} held by {} for {:?}",
                app.data_object(cand.data()).name(),
                cand.set(),
                cand.holder(),
                cand.skippers(),
            );
        }
        println!(
            "   basic {}   ds {} ({:+.1}%)   cds {} ({:+.1}%)\n",
            t_basic.total(),
            t_ds.total(),
            t_ds.improvement_over(t_basic) * 100.0,
            t_cds.total(),
            t_cds.improvement_over(t_basic) * 100.0,
        );
    }
    Ok(())
}
