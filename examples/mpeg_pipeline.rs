//! The MPEG macroblock pipeline across Frame Buffer sizes: shows the
//! feasibility boundary (the Basic Scheduler cannot run MPEG in a 1K
//! set) and how the reuse factor and improvements grow with memory.
//!
//! ```sh
//! cargo run --example mpeg_pipeline
//! ```

use mcds_core::{
    evaluate, BasicScheduler, CdsScheduler, DataScheduler, DsScheduler, ScheduleError,
};
use mcds_model::{ArchParams, Words};
use mcds_workloads::mpeg::{mpeg_app, mpeg_schedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = mpeg_app(48)?;
    let sched = mpeg_schedule(&app)?;
    println!(
        "MPEG macroblock pipeline: {} kernels in {} clusters, {} data/iteration\n",
        app.kernels().len(),
        sched.len(),
        app.total_data_per_iteration()
    );
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>12}",
        "FB set", "scheduler", "RF", "time", "vs basic"
    );

    for kw in [1u64, 2, 3, 4] {
        let arch = ArchParams::m1_with_fb(Words::kilo(kw));
        let mut basic_time: Option<u64> = None;
        for scheduler in [
            &BasicScheduler::new() as &dyn DataScheduler,
            &DsScheduler::new(),
            &CdsScheduler::new(),
        ] {
            match scheduler.plan(&app, &sched, &arch) {
                Ok(plan) => {
                    let report = evaluate(&plan, &arch)?;
                    let vs = match basic_time {
                        Some(b) => format!(
                            "{:+.1}%",
                            (b as f64 - report.total().get() as f64) / b as f64 * 100.0
                        ),
                        None => "-".to_owned(),
                    };
                    if plan.scheduler() == "basic" {
                        basic_time = Some(report.total().get());
                    }
                    println!(
                        "{:<8} {:>8} {:>12} {:>12} {:>12}",
                        format!("{kw}K"),
                        plan.scheduler(),
                        plan.rf(),
                        report.total().to_string(),
                        vs
                    );
                }
                Err(ScheduleError::Infeasible {
                    scheduler,
                    cluster,
                    required,
                    capacity,
                }) => {
                    println!(
                        "{:<8} {:>8} {:>12} {:>12} {:>12}",
                        format!("{kw}K"),
                        scheduler,
                        "-",
                        format!("INFEASIBLE"),
                        format!("{cluster} needs {required} > {capacity}")
                    );
                }
                Err(e) => return Err(e.into()),
            }
        }
        println!();
    }
    Ok(())
}
