//! The MPEG macroblock pipeline across Frame Buffer sizes: shows the
//! feasibility boundary (the Basic Scheduler cannot run MPEG in a 1K
//! set) and how the reuse factor and improvements grow with memory.
//!
//! The memory axis is swept by the parallel [`SweepSpec`] engine — one
//! workload, four architecture variants, all three schedulers.
//!
//! ```sh
//! cargo run --example mpeg_pipeline
//! ```

use mcds_core::McdsError;
use mcds_model::Words;
use mcds_sweep::{SweepSpec, SweepWorkload};
use mcds_workloads::mpeg::{mpeg_app, mpeg_schedule};

fn main() -> Result<(), McdsError> {
    let app = mpeg_app(48)?;
    let sched = mpeg_schedule(&app)?;
    println!(
        "MPEG macroblock pipeline: {} kernels in {} clusters, {} data/iteration\n",
        app.kernels().len(),
        sched.len(),
        app.total_data_per_iteration()
    );

    let report = SweepSpec::new()
        .workload(SweepWorkload::new("MPEG", app).partition("paper", sched))
        .fb_sizes([1u64, 2, 3, 4].map(Words::kilo))
        .run()?;

    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>12}",
        "FB set", "scheduler", "RF", "time", "vs basic"
    );
    for row in &report.rows {
        let basic_cycles = row
            .outcomes
            .iter()
            .find(|o| o.scheduler.name() == "basic")
            .and_then(|o| o.total_cycles);
        for o in &row.outcomes {
            let (rf, time, vs) = match o.total_cycles {
                Some(cycles) => (
                    o.rf.expect("feasible points have an RF").to_string(),
                    cycles.to_string(),
                    match basic_cycles {
                        Some(b) if o.scheduler.name() != "basic" => {
                            format!("{:+.1}%", (b as f64 - cycles as f64) / b as f64 * 100.0)
                        }
                        _ => "-".to_owned(),
                    },
                ),
                None => (
                    "-".to_owned(),
                    "INFEASIBLE".to_owned(),
                    o.error.clone().unwrap_or_default(),
                ),
            };
            println!(
                "{:<8} {:>8} {:>12} {:>12} {:>12}",
                format!("{}K", row.fb_set.get() / 1024),
                o.scheduler,
                rf,
                time,
                vs
            );
        }
        println!();
    }
    Ok(())
}
