//! Quickstart: build a small application, schedule it with all three
//! data schedulers, and compare execution times on the M1 simulator.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mcds_core::{evaluate, BasicScheduler, CdsScheduler, DataScheduler, DsScheduler};
use mcds_model::{ApplicationBuilder, ArchParams, ClusterSchedule, Cycles, DataKind, Words};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the application: kernels with known context counts,
    //    execution times, and input/output data sizes. Here: a tiny
    //    filter pipeline where a coefficient table is shared by the
    //    first and third cluster (both on Frame Buffer set 0).
    let mut b = ApplicationBuilder::new("quickstart");
    let coeffs = b.data("coeffs", Words::new(128), DataKind::ExternalInput);
    let samples = b.data("samples", Words::new(192), DataKind::ExternalInput);
    let filtered = b.data("filtered", Words::new(192), DataKind::Intermediate);
    let spectrum = b.data("spectrum", Words::new(128), DataKind::Intermediate);
    let detected = b.data("detected", Words::new(64), DataKind::FinalResult);
    let fir = b.kernel("fir", 192, Cycles::new(250), &[samples, coeffs], &[filtered]);
    let fft = b.kernel("fft", 256, Cycles::new(300), &[filtered], &[spectrum]);
    let detect = b.kernel("detect", 128, Cycles::new(150), &[spectrum, coeffs], &[detected]);
    let app = b.iterations(64).build()?;

    // 2. A kernel schedule: three single-kernel clusters alternating
    //    between the two Frame Buffer sets.
    let sched = ClusterSchedule::new(&app, vec![vec![fir], vec![fft], vec![detect]])?;

    // 3. The target: MorphoSys M1 with 1K-word Frame Buffer sets.
    let arch = ArchParams::m1();

    println!("application: {} ({} iterations)", app.name(), app.iterations());
    println!(
        "data per iteration: {}, total contexts: {} words\n",
        app.total_data_per_iteration(),
        app.total_contexts()
    );

    // 4. Run the three schedulers and compare.
    let mut baseline = None;
    for scheduler in [
        &BasicScheduler::new() as &dyn DataScheduler,
        &DsScheduler::new(),
        &CdsScheduler::new(),
    ] {
        let plan = scheduler.plan(&app, &sched, &arch)?;
        let report = evaluate(&plan, &arch)?;
        let improvement = baseline
            .map(|b: u64| (b as f64 - report.total().get() as f64) / b as f64 * 100.0)
            .unwrap_or(0.0);
        println!(
            "{:<6} RF={} data={:>6} contexts={:>6}w time={:>8} improvement={:>5.1}%",
            plan.scheduler(),
            plan.rf(),
            plan.total_data_words().to_string(),
            plan.total_context_words(),
            report.total().to_string(),
            improvement,
        );
        if plan.scheduler() == "basic" {
            baseline = Some(report.total().get());
        }
        if !plan.retention().is_empty() {
            println!("       retained:");
            for cand in plan.retention().candidates() {
                println!(
                    "         {} ({}; saves {}/iteration, TF={:.3})",
                    app.data_object(cand.data()).name(),
                    cand.set(),
                    cand.avoided_per_iter(),
                    cand.tf(),
                );
            }
        }
    }
    Ok(())
}
