//! Quickstart: build a small application, run all three data schedulers
//! through the [`Pipeline`] facade, and compare execution times on the
//! M1 simulator.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mcds_core::{McdsError, Pipeline};
use mcds_model::{ApplicationBuilder, ClusterSchedule, Cycles, DataKind, Words};

fn main() -> Result<(), McdsError> {
    // 1. Describe the application: kernels with known context counts,
    //    execution times, and input/output data sizes. Here: a tiny
    //    filter pipeline where a coefficient table is shared by the
    //    first and third cluster (both on Frame Buffer set 0).
    let mut b = ApplicationBuilder::new("quickstart");
    let coeffs = b.data("coeffs", Words::new(128), DataKind::ExternalInput);
    let samples = b.data("samples", Words::new(192), DataKind::ExternalInput);
    let filtered = b.data("filtered", Words::new(192), DataKind::Intermediate);
    let spectrum = b.data("spectrum", Words::new(128), DataKind::Intermediate);
    let detected = b.data("detected", Words::new(64), DataKind::FinalResult);
    let fir = b.kernel(
        "fir",
        192,
        Cycles::new(250),
        &[samples, coeffs],
        &[filtered],
    );
    let fft = b.kernel("fft", 256, Cycles::new(300), &[filtered], &[spectrum]);
    let detect = b.kernel(
        "detect",
        128,
        Cycles::new(150),
        &[spectrum, coeffs],
        &[detected],
    );
    let app = b.iterations(64).build()?;

    // 2. A kernel schedule: three single-kernel clusters alternating
    //    between the two Frame Buffer sets.
    let sched = ClusterSchedule::new(&app, vec![vec![fir], vec![fft], vec![detect]])?;

    // 3. The pipeline: application → fixed cluster schedule → M1 (the
    //    default architecture). `compare()` runs Basic, DS and CDS over
    //    one shared analysis.
    let pipeline = Pipeline::new(app).schedule(sched);
    let app = pipeline.app();
    println!(
        "application: {} ({} iterations)",
        app.name(),
        app.iterations()
    );
    println!(
        "data per iteration: {}, total contexts: {} words\n",
        app.total_data_per_iteration(),
        app.total_contexts()
    );

    let cmp = pipeline.compare()?;
    let comparison = cmp.comparison();
    let basic_time = comparison
        .basic
        .as_ref()
        .map(|(_, report)| report.total().get())
        .ok();
    for result in [&comparison.basic, &comparison.ds, &comparison.cds] {
        let (plan, report) = result.as_ref().map_err(|e| e.clone())?;
        let improvement = match basic_time {
            Some(b) if plan.scheduler() != "basic" => {
                (b as f64 - report.total().get() as f64) / b as f64 * 100.0
            }
            _ => 0.0,
        };
        println!(
            "{:<6} RF={} data={:>6} contexts={:>6}w time={:>8} improvement={:>5.1}%",
            plan.scheduler(),
            plan.rf(),
            plan.total_data_words().to_string(),
            plan.total_context_words(),
            report.total().to_string(),
            improvement,
        );
        if !plan.retention().is_empty() {
            println!("       retained:");
            for cand in plan.retention().candidates() {
                println!(
                    "         {} ({}; saves {}/iteration, TF={:.3})",
                    app.data_object(cand.data()).name(),
                    cand.set(),
                    cand.avoided_per_iter(),
                    cand.tf(),
                );
            }
        }
    }
    println!(
        "\nas a Table-1 row:\n{}\n{}",
        mcds_core::table_header(),
        cmp.row()
    );
    Ok(())
}
