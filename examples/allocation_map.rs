//! Figure 5 companion: watch the first-fit two-ended allocator place a
//! cluster's data, results and retained objects over a round of
//! execution, rendered as an occupancy map per Frame Buffer set.
//!
//! ```sh
//! cargo run --example allocation_map
//! ```

use mcds_core::{AllocationWalk, FootprintModel, Lifetimes, Pipeline};
use mcds_fballoc::{render_map, Direction, FbAllocator};
use mcds_model::{ArchParams, Words};
use mcds_workloads::e_series::e1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: a hand-driven miniature of the paper's Figure 5 — shared
    // data at the top, results at the bottom, release and reuse.
    println!("== hand-driven allocation (cf. paper Figure 5) ==");
    let mut fb = FbAllocator::with_trace(Words::new(64));
    let d13 = fb.alloc("D13", Words::new(16), Direction::FromUpper)?; // shared data
    let _d37 = fb.alloc("D37", Words::new(16), Direction::FromUpper)?;
    let _d2 = fb.alloc("d2", Words::new(8), Direction::FromUpper)?; // kernel data
    let r13 = fb.alloc("r13", Words::new(8), Direction::FromLower)?; // intermediate
    let _r35 = fb.alloc("R3,5", Words::new(8), Direction::FromUpper)?; // shared result
    println!(
        "{}",
        render_map(fb.trace().expect("traced"), Words::new(64), 8)
    );
    fb.free(r13)?; // released after its last consumer
    fb.free(d13)?; // shared data expires after its last cluster
    println!("after release(c,k,iter):");
    println!(
        "{}",
        render_map(fb.trace().expect("traced"), Words::new(64), 8)
    );

    // Part 2: the real §5 walk over E1 under the Complete Data
    // Scheduler, with regularity and split statistics.
    println!("== E1 under the Complete Data Scheduler (FB = 1K/set) ==");
    let (app, sched) = e1(8)?;
    let pipeline = Pipeline::new(app)
        .arch(ArchParams::m1_with_fb(Words::kilo(1)))
        .schedule(sched);
    let run = pipeline.run()?;
    let (app, sched, plan) = (pipeline.app(), run.schedule(), run.plan());
    let lifetimes = Lifetimes::analyze(app, sched);
    let walk = AllocationWalk::new(
        app,
        sched,
        &lifetimes,
        plan.retention(),
        plan.rf(),
        pipeline.arch_params().fb_set_words(),
        FootprintModel::Replacement,
    );
    let report = walk.run(2, true)?;
    let maps = report.maps().expect("traced");
    println!("--- FB set 0 (top = high addresses) ---\n{}", maps[0]);
    println!("--- FB set 1 ---\n{}", maps[1]);
    println!(
        "peaks: {} / {}   regular placements: {}   irregular: {}   splits: {}",
        report.peak()[0],
        report.peak()[1],
        report.regular_hits(),
        report.irregular(),
        report.splits(),
    );
    Ok(())
}
