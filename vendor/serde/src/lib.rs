//! Vendored minimal substitute for `serde`, used because the build
//! environment has no registry access.
//!
//! Instead of serde's visitor architecture, this models serialization
//! as conversion to/from a [`Value`] tree; `serde_json` (also
//! vendored) renders and parses that tree. The public surface matches
//! what this workspace uses: `Serialize` / `Deserialize` derives and
//! `serde_json::{to_string, to_string_pretty, from_str}`.

// Vendored API-compatible substitute; not linted.
#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
pub use serde_derive::{Deserialize, Serialize};

/// An in-memory serialization tree (the moral equivalent of
/// `serde_json::Value`, but owned by the data-model layer).
///
/// Maps are ordered vectors so serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer (always < 0; non-negative parses as `UInt`).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered key/value map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value (first match wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a serialization tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a serialization tree.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Called by derived impls when a struct field is absent from the
    /// input map. `Option<T>` overrides this to return `None`; all
    /// other types report an error.
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

// `Value` serializes as itself, which lets callers parse JSON into a
// raw tree (e.g. `serde_json::from_str::<Value>`) and inspect fields
// before committing to a typed decode.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected a bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected a string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected an unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n: i64 = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n).map_err(|_| {
                        Error::custom(format!("integer {n} out of range for i64"))
                    })?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected an integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::custom(format!("expected a number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected an array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected a {N}-element array, got {len}")))
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T> Deserialize for std::collections::HashSet<T>
where
    T: Deserialize + Eq + std::hash::Hash,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected an array, got {other:?}"))),
        }
    }
}

// Maps with non-string keys serialize as sorted `[key, value]` pairs,
// which keeps output deterministic and round-trippable.
impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Seq(
            entries
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let Value::Seq(items) = value else {
            return Err(Error::custom(format!(
                "expected an array of pairs, got {value:?}"
            )));
        };
        items
            .iter()
            .map(|item| <(K, V)>::from_value(item))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let Value::Seq(items) = value else {
                    return Err(Error::custom(format!(
                        "expected an array for a tuple, got {value:?}"
                    )));
                };
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a {expected}-element array, got {}", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
