//! Vendored minimal substitute for `rand`, used because the build
//! environment has no registry access.
//!
//! Provides a deterministic `StdRng` (splitmix64) plus the `Rng` /
//! `SeedableRng` trait surface this workspace uses: `seed_from_u64`,
//! `gen_range` over `Range` / `RangeInclusive`, and `gen_bool`.
//! Note: the stream differs from the real `rand::StdRng`; this crate
//! only promises determinism for a given seed, which is all the
//! workspace's generators rely on.

// Vendored API-compatible substitute; not linted.
#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // 53 uniform mantissa bits, same construction as rand's
        // `Open01`-style float sampling.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let x = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + x * (self.end - self.start)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit RNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&x));
            let y = rng.gen_range(2usize..5);
            assert!((2..5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
