//! Vendored minimal substitute for `serde_json`, used because the
//! build environment has no registry access.
//!
//! Renders and parses the vendored `serde::Value` tree as JSON.
//! Supports `to_string`, `to_string_pretty`, and `from_str`.

// Vendored API-compatible substitute; not linted.
#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Rust's `{}` for f64 round-trips and prints integral
                // values without an exponent, which is valid JSON.
                out.push_str(&format!("{x}"));
                if x.fract() == 0.0 && !out.ends_with(|c: char| c == '.' || c == 'e' || c == 'E') {
                    // Preserve float-ness so the value re-parses as Float.
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, depth),
        Value::Map(entries) => write_map(out, entries, indent, depth),
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<&str>, depth: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline(out, indent, depth + 1);
        write_value(out, item, indent, depth + 1);
    }
    newline(out, indent, depth);
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Value)], indent: Option<&str>, depth: usize) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (key, item)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline(out, indent, depth + 1);
        write_string(out, key);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, item, indent, depth + 1);
    }
    newline(out, indent, depth);
    out.push('}');
}

fn newline(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {} of JSON input",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {} of JSON input",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in JSON string".to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape in JSON string".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(Error(
                                        "unpaired surrogate in JSON string".to_string(),
                                    ));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).ok_or_else(|| {
                                Error("invalid \\u escape in JSON string".to_string())
                            })?);
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape `\\{}` in JSON string",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error("unterminated JSON string".to_string())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error("truncated \\u escape in JSON string".to_string()))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| Error(format!("invalid \\u escape `{hex}`")))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number in JSON input".to_string()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}` in JSON input")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\u0041\\n\"").unwrap(), "aA\n");
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("7").unwrap(), Some(7));
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![vec![1u64], vec![2]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  ["));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
