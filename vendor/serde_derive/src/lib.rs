//! Vendored minimal substitute for `serde_derive`, used because the
//! build environment has no registry access.
//!
//! Generates implementations of the vendored `serde::Serialize` /
//! `serde::Deserialize` traits (a `Value`-tree model, not the visitor
//! model of real serde). Supports the subset of shapes this workspace
//! uses: non-generic structs with named fields, tuple structs, and
//! enums with unit / newtype / struct variants, plus the container
//! attribute `#[serde(transparent)]` and the field attributes
//! `#[serde(default)]` and `#[serde(flatten)]`.

// Vendored API-compatible substitute; not linted.
#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: bool,
    flatten: bool,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    transparent: bool,
    shape: Shape,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes leading attributes, returning the `serde(...)` words seen.
    fn take_attrs(&mut self) -> Vec<String> {
        let mut words = Vec::new();
        loop {
            let is_hash = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
            if !is_hash {
                return words;
            }
            self.next();
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("serde_derive: expected [...] after #");
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
            if is_serde {
                for t in &inner {
                    if let TokenTree::Group(args) = t {
                        for a in args.stream() {
                            if let TokenTree::Ident(w) = a {
                                words.push(w.to_string());
                            }
                        }
                    }
                }
            }
        }
    }

    /// Consumes an optional `pub` / `pub(...)` visibility.
    fn take_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skips a type (or expression) until a top-level `,`, tracking
    /// angle-bracket depth. The comma itself is consumed.
    fn skip_until_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let words = c.take_attrs();
        if c.at_end() {
            break;
        }
        c.take_visibility();
        let Some(TokenTree::Ident(name)) = c.next() else {
            panic!("serde_derive: expected field name");
        };
        // Consume `:` then the type.
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        c.skip_until_comma();
        fields.push(Field {
            name: name.to_string(),
            default: words.iter().any(|w| w == "default"),
            flatten: words.iter().any(|w| w == "flatten"),
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while !c.at_end() {
        c.take_attrs();
        if c.at_end() {
            break;
        }
        c.take_visibility();
        if c.at_end() {
            break;
        }
        count += 1;
        c.skip_until_comma();
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.take_attrs();
        if c.at_end() {
            break;
        }
        let Some(TokenTree::Ident(name)) = c.next() else {
            panic!("serde_derive: expected variant name");
        };
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                c.next();
                VariantFields::Named(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                VariantFields::Tuple(n)
            }
            _ => VariantFields::Unit,
        };
        // Consume up to and including the variant separator.
        while let Some(t) = c.peek() {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                c.next();
                break;
            }
            c.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            fields,
        });
    }
    variants
}

fn parse_input(stream: TokenStream) -> Input {
    let mut c = Cursor::new(stream);
    let words = c.take_attrs();
    let transparent = words.iter().any(|w| w == "transparent");
    c.take_visibility();
    let kind = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let Some(TokenTree::Ident(name)) = c.next() else {
        panic!("serde_derive: expected type name");
    };
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported");
    }
    let shape = match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::TupleStruct(0),
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };
    Input {
        name: name.to_string(),
        transparent,
        shape,
    }
}

fn serialize_named_fields(fields: &[Field], access: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let expr = format!("::serde::Serialize::to_value(&{access}{})", f.name);
        if f.flatten {
            out.push_str(&format!(
                "match {expr} {{\n\
                 ::serde::Value::Map(__entries) => __m.extend(__entries),\n\
                 __other => __m.push((\"{n}\".to_string(), __other)),\n\
                 }}\n",
                n = f.name
            ));
        } else {
            out.push_str(&format!(
                "__m.push((\"{n}\".to_string(), {expr}));\n",
                n = f.name
            ));
        }
    }
    out
}

fn deserialize_named_fields(fields: &[Field], source: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!("::serde::Deserialize::missing_field(\"{}\")?", f.name)
        };
        let arm = if f.flatten {
            format!("::serde::Deserialize::from_value({source})?")
        } else {
            format!(
                "match {source}.get(\"{n}\") {{\n\
                 Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                 None => {missing},\n\
                 }}",
                n = f.name
            )
        };
        out.push_str(&format!("{n}: {arm},\n", n = f.name));
    }
    out
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            if input.transparent {
                assert_eq!(fields.len(), 1, "transparent needs exactly one field");
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            } else {
                format!(
                    "let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n{}\
                     ::serde::Value::Map(__m)",
                    serialize_named_fields(fields, "self.")
                )
            }
        }
        Shape::TupleStruct(n) => {
            if input.transparent || *n == 1 {
                assert_eq!(*n, 1, "transparent needs exactly one field");
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            }
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantFields::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "__m.push((\"{n}\".to_string(), ::serde::Serialize::to_value({n})));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}\
                             ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(__m))])\n\
                             }},\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => \
                             ::serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    );
    out.parse().expect("serde_derive: generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            if input.transparent {
                assert_eq!(fields.len(), 1, "transparent needs exactly one field");
                format!(
                    "Ok({name} {{ {f}: ::serde::Deserialize::from_value(__v)? }})",
                    f = fields[0].name
                )
            } else {
                format!(
                    "if !matches!(__v, ::serde::Value::Map(_)) {{\n\
                     return Err(::serde::Error::custom(format!(\
                     \"expected an object for `{name}`\")));\n}}\n\
                     Ok({name} {{\n{}\n}})",
                    deserialize_named_fields(fields, "__v")
                )
            }
        }
        Shape::TupleStruct(n) => {
            assert_eq!(*n, 1, "vendored serde_derive: only newtype tuple structs");
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"))
                    }
                    VariantFields::Named(fields) => {
                        data_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn} {{\n{}\n}}),\n",
                            deserialize_named_fields(fields, "__inner")
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        assert_eq!(*n, 1, "vendored serde_derive: only newtype enum variants");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => return Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{__other}}` for `{name}`\"))),\n}},\n\
                 ::serde::Value::Map(__entries) => {{\n\
                 let Some((__tag, __inner)) = __entries.first() else {{\n\
                 return Err(::serde::Error::custom(\"empty enum object\".to_string()));\n}};\n\
                 match __tag.as_str() {{\n{data_arms}\
                 __other => return Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{__other}}` for `{name}`\"))),\n}}\n}},\n\
                 _ => return Err(::serde::Error::custom(\
                 \"expected a string or single-key object for an enum\".to_string())),\n\
                 }}"
            )
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         #[allow(unreachable_code, clippy::needless_return)]\n\
         fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    );
    out.parse().expect("serde_derive: generated invalid Rust")
}
