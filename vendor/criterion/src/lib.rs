//! Vendored minimal substitute for `criterion`, used because the
//! build environment has no registry access.
//!
//! Provides the API surface this workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! adaptive timing loop instead of criterion's statistical analysis.
//! Each benchmark prints one `name ... time: <ns>/iter` line.

// Vendored API-compatible substitute; not linted.
#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
use std::time::{Duration, Instant};

/// How long the measurement loop aims to run per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into_benchmark_id(), None, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored timing loop is
    /// time-bounded rather than sample-count-bounded.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&id, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&id, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `f`: a short warm-up, then an adaptive loop that runs
    /// until [`TARGET`] elapses.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and initial estimate.
        let start = Instant::now();
        std::hint::black_box(f());
        let mut est = start.elapsed().max(Duration::from_nanos(1));

        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        while total_time < TARGET {
            // Batch size sized from the estimate so clock reads stay
            // off the hot path; capped to keep batches responsive.
            let batch = (TARGET.as_nanos() / est.as_nanos() / 10).clamp(1, 100_000) as u64;
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            est = (elapsed / batch as u32).max(Duration::from_nanos(1));
            total_iters += batch;
            total_time += elapsed;
        }
        self.ns_per_iter = Some(total_time.as_nanos() as f64 / total_iters as f64);
    }
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier with a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Values accepted as benchmark identifiers.
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn run_benchmark(id: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { ns_per_iter: None };
    f(&mut b);
    match b.ns_per_iter {
        Some(ns) => {
            let extra = match throughput {
                Some(Throughput::Elements(n)) if ns > 0.0 => {
                    format!("  ({:.2} Melem/s)", n as f64 / ns * 1000.0)
                }
                Some(Throughput::Bytes(n)) if ns > 0.0 => {
                    format!("  ({:.2} MiB/s)", n as f64 / ns * 1000.0 * 1e6 / 1048576.0)
                }
                _ => String::new(),
            };
            println!("{id:<50} time: {ns:>14.1} ns/iter{extra}");
        }
        None => println!("{id:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("vendored");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| {
            b.iter(|| (0..4u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter(8u64), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
