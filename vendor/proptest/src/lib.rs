//! Vendored minimal substitute for `proptest`, used because the build
//! environment has no registry access.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` / `prop_oneof!` / `prop_assert!` / `prop_assert_eq!`
//! macros, range and tuple strategies, `Just`, `prop_map`,
//! `collection::vec`, `any::<T>()`, `sample::Index`, and
//! `ProptestConfig::with_cases`. Cases are generated from a seed
//! derived from the test name, so runs are deterministic; there is no
//! shrinking — a failing case panics with the generated inputs'
//! `Debug` representation (printed by the assertion macros' panic
//! message where the test includes them).

// Vendored API-compatible substitute; not linted.
#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
pub mod test_runner {
    /// Deterministic RNG driving test-case generation (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test name, so each test gets a
        /// distinct but reproducible stream.
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a over the name bytes.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "TestRng::below(0)");
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy; used by `prop_oneof!` to unify branch types.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (see `prop_oneof!`).
    pub struct Union<T> {
        branches: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `branches` (must be non-empty).
        pub fn new(branches: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union { branches }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let ix = rng.below(self.branches.len() as u64) as usize;
            self.branches[ix].generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Sources of a vector length: a fixed size or a range of sizes.
    pub trait SizeRange {
        /// Picks a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec-size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty vec-size range");
            start + rng.below((end - start + 1) as u64) as usize
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Strategy producing vectors whose elements come from `element`
    /// and whose length comes from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    /// A deferred index: an arbitrary value mapped into `[0, len)` at
    /// use time via [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Maps this index into `[0, len)`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            crate::sample::Index(rng.next_u64())
        }
    }
}

/// Everything a property test needs, matching proptest's prelude.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Defines deterministic property tests over generated inputs.
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a `#[test]`
/// (the attribute is written inside the macro invocation, as with the
/// real proptest) running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Uniformly chooses between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_and_map_compose() {
        let strat = prop_oneof![Just(0u64), (1u64..10).prop_map(|x| x * 100),];
        let mut rng = crate::test_runner::TestRng::from_name("union");
        for _ in 0..64 {
            let v = strat.generate(&mut rng);
            assert!(v == 0 || (100..1000).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_values_respect_ranges(
            a in 3u64..9,
            b in 1usize..=4,
            xs in prop::collection::vec((0u32..5, any::<bool>()), 2..6),
            ix in any::<prop::sample::Index>(),
        ) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!(xs.len() >= 2 && xs.len() < 6, "len {}", xs.len());
            prop_assert!(ix.index(7) < 7);
            prop_assert_eq!(xs.iter().filter(|(x, _)| *x >= 5).count(), 0);
        }
    }
}
