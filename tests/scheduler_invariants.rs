//! Cross-crate scheduler invariants, property-tested over random
//! workloads (invariants 1–6 of DESIGN.md).

use mcds_core::{
    all_fit, cluster_peak, ds_formula, evaluate, find_candidates_with, max_common_rf,
    AllocationWalk, BasicScheduler, CdsScheduler, DataScheduler, DsScheduler, Event,
    FootprintModel, Lifetimes, Observer, RetentionSet, ScheduleAnalysis, VecSink,
};
use mcds_model::{ArchParams, Words};
use mcds_workloads::synthetic::{SyntheticConfig, SyntheticGenerator};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = (u64, SyntheticConfig)> {
    (
        any::<u64>(),
        2usize..6,
        1usize..4,
        16u64..200,
        0.0f64..1.0,
        0.0f64..1.0,
        4u64..20,
    )
        .prop_map(|(seed, clusters, kmax, dmax, share, cross, iters)| {
            (
                seed,
                SyntheticConfig {
                    clusters,
                    kernels_per_cluster: (1, kmax),
                    data_words: (16, dmax.max(17)),
                    share_probability: share,
                    cross_probability: cross,
                    contexts: 128,
                    exec_cycles: (50, 500),
                    iterations: iters,
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 3: T_cds <= T_ds <= T_basic whenever all three run.
    #[test]
    fn dominance((seed, cfg) in config_strategy()) {
        let (app, sched) = SyntheticGenerator::new(seed).generate(&cfg).expect("valid");
        let arch = ArchParams::m1_with_fb(Words::kilo(4));
        let basic = BasicScheduler::new().plan(&app, &sched, &arch);
        let ds = DsScheduler::new().plan(&app, &sched, &arch);
        let cds = CdsScheduler::new().plan(&app, &sched, &arch);
        if let (Ok(b), Ok(d), Ok(c)) = (basic, ds, cds) {
            let tb = evaluate(&b, &arch).expect("runs").total();
            let td = evaluate(&d, &arch).expect("runs").total();
            let tc = evaluate(&c, &arch).expect("runs").total();
            prop_assert!(td <= tb, "ds {td} > basic {tb}");
            prop_assert!(tc <= td, "cds {tc} > ds {td}");
        }
    }

    /// Invariant 2: the paper's analytic DS(C_c) equals the walk-based
    /// peak at rf=1 without retention, and the allocator never needs
    /// more than the analytic peak at matching parameters.
    #[test]
    fn footprint_formula_consistency((seed, cfg) in config_strategy()) {
        let (app, sched) = SyntheticGenerator::new(seed).generate(&cfg).expect("valid");
        let lt = Lifetimes::analyze(&app, &sched);
        let empty = RetentionSet::empty();
        for c in sched.clusters() {
            let walk = cluster_peak(
                &app, &sched, &lt, &empty, c.id(), 1, FootprintModel::Replacement,
            );
            let formula = ds_formula(&app, &sched, &lt, c.id());
            prop_assert_eq!(walk, formula, "cluster {}", c.id());
            let basic = cluster_peak(
                &app, &sched, &lt, &empty, c.id(), 1, FootprintModel::NoReplacement,
            );
            prop_assert!(basic >= walk, "replacement can only shrink the peak");
        }
    }

    /// Invariant 5: enlarging the Frame Buffer never slows any
    /// scheduler down, and the *maximum feasible* RF is non-decreasing
    /// in FB size. (The RF a plan actually picks is argmin over
    /// execution time and need not be monotone.)
    #[test]
    fn memory_monotonicity((seed, cfg) in config_strategy()) {
        let (app, sched) = SyntheticGenerator::new(seed).generate(&cfg).expect("valid");
        let small = ArchParams::m1_with_fb(Words::kilo(2));
        let large = ArchParams::m1_with_fb(Words::kilo(8));
        let at = |arch: &ArchParams| DsScheduler::new().plan(&app, &sched, arch).ok().map(|p| {
            evaluate(&p, arch).expect("runs").total()
        });
        if let (Some(t_s), Some(t_l)) = (at(&small), at(&large)) {
            prop_assert!(t_l <= t_s, "more memory slowed execution: {t_s} -> {t_l}");
        }
        let lt = Lifetimes::analyze(&app, &sched);
        let empty = RetentionSet::empty();
        let rf_at = |fbs: Words| mcds_core::max_common_rf(
            &app, &sched, &lt, &empty, FootprintModel::Replacement, fbs,
        );
        if let (Some(rf_s), Some(rf_l)) = (rf_at(Words::kilo(2)), rf_at(Words::kilo(8))) {
            prop_assert!(rf_l >= rf_s, "max rf shrank with memory: {rf_s} -> {rf_l}");
        }
    }

    /// Invariant 1/6: when the footprint model says a plan fits, the
    /// actual §5 allocation walk succeeds within the same capacity.
    #[test]
    fn footprint_admits_allocation((seed, cfg) in config_strategy()) {
        let (app, sched) = SyntheticGenerator::new(seed).generate(&cfg).expect("valid");
        let lt = Lifetimes::analyze(&app, &sched);
        let empty = RetentionSet::empty();
        let fbs = Words::kilo(4);
        for rf in [1u64, 2, 3] {
            if rf > app.iterations() {
                continue;
            }
            if all_fit(&app, &sched, &lt, &empty, rf, FootprintModel::Replacement, fbs) {
                let walk = AllocationWalk::new(
                    &app, &sched, &lt, &empty, rf, fbs, FootprintModel::Replacement,
                );
                let report = walk.run(2, false);
                prop_assert!(report.is_ok(), "rf={rf}: walk failed: {report:?}");
            }
        }
    }

    /// Sweep memoization: every cached invariant of
    /// [`ScheduleAnalysis`] equals its freshly computed counterpart,
    /// cold and warm.
    #[test]
    fn memoized_invariants_match_fresh((seed, cfg) in config_strategy()) {
        let (app, sched) = SyntheticGenerator::new(seed).generate(&cfg).expect("valid");
        let analysis = ScheduleAnalysis::new(&app, &sched);
        let lt = Lifetimes::analyze(&app, &sched);
        let empty = RetentionSet::empty();
        for c in sched.clusters() {
            for rf in [1, 2, app.iterations()] {
                for model in [FootprintModel::Replacement, FootprintModel::NoReplacement] {
                    let fresh = cluster_peak(&app, &sched, &lt, &empty, c.id(), rf, model);
                    let cold = analysis.cluster_footprint(&app, &sched, c.id(), rf, model);
                    let warm = analysis.cluster_footprint(&app, &sched, c.id(), rf, model);
                    prop_assert_eq!(cold, fresh, "cold {} rf={}", c.id(), rf);
                    prop_assert_eq!(warm, fresh, "warm {} rf={}", c.id(), rf);
                }
            }
        }
        for fbs in [Words::kilo(1), Words::kilo(4)] {
            let model = FootprintModel::Replacement;
            prop_assert_eq!(
                analysis.max_common_rf_empty(&app, &sched, model, fbs),
                max_common_rf(&app, &sched, &lt, &empty, model, fbs),
                "fbs={}", fbs
            );
        }
        for cross in [false, true] {
            prop_assert_eq!(
                analysis.sharing_candidates(&app, &sched, cross),
                &find_candidates_with(&app, &sched, &lt, cross)[..]
            );
        }
    }

    /// Trace contract: retention decisions stream in non-increasing TF
    /// order (the §4 greedy visits candidates best-first), every
    /// *accepted* event satisfies its recorded DS(C_c) <= FBS, and
    /// every *rejected* event cites a genuinely violated constraint.
    #[test]
    fn retention_events_are_tf_ordered_and_feasible((seed, cfg) in config_strategy()) {
        let (app, sched) = SyntheticGenerator::new(seed).generate(&cfg).expect("valid");
        let arch = ArchParams::m1_with_fb(Words::kilo(2));
        let analysis = ScheduleAnalysis::new(&app, &sched);
        let sink = VecSink::new();
        let observer = Observer::new(Some(&sink), None);
        if CdsScheduler::new()
            .plan_observed(&app, &sched, &arch, &analysis, observer)
            .is_ok()
        {
            let mut last_tf = f64::INFINITY;
            for ev in sink.take() {
                match ev {
                    Event::RetentionAccepted { name, tf, ds, fbs, .. } => {
                        prop_assert!(tf <= last_tf, "TF order violated at {name}: {tf} after {last_tf}");
                        prop_assert!(ds <= fbs, "accepted {name} leaves DS {ds} > FBS {fbs}");
                        last_tf = tf;
                    }
                    Event::RetentionRejected { name, tf, ds, fbs, .. } => {
                        prop_assert!(tf <= last_tf, "TF order violated at {name}: {tf} after {last_tf}");
                        prop_assert!(ds > fbs, "rejected {name} cites no violation: DS {ds} <= FBS {fbs}");
                        last_tf = tf;
                    }
                    _ => {}
                }
            }
        }
    }

    /// Retention set feasibility: whatever the CDS retains still fits
    /// every cluster at the chosen RF, and the retained volume matches
    /// the DT metric.
    #[test]
    fn retention_stays_feasible((seed, cfg) in config_strategy()) {
        let (app, sched) = SyntheticGenerator::new(seed).generate(&cfg).expect("valid");
        let arch = ArchParams::m1_with_fb(Words::kilo(4));
        if let Ok(plan) = CdsScheduler::new().plan(&app, &sched, &arch) {
            let lt = Lifetimes::analyze(&app, &sched);
            prop_assert!(all_fit(
                &app, &sched, &lt, plan.retention(), plan.rf(),
                FootprintModel::Replacement, arch.fb_set_words(),
            ));
            let sum: Words = plan
                .retention()
                .candidates()
                .iter()
                .map(|c| c.avoided_per_iter())
                .sum();
            prop_assert_eq!(sum, plan.dt_avoided_per_iter());
        }
    }
}
