//! Integration tests for the §7 future-work extension: retention
//! across Frame Buffer sets on a dual-ported FB
//! (`ArchParams::fb_cross_set_access`).

use mcds_core::{evaluate, generate_program, CdsScheduler, Comparison, DataScheduler};
use mcds_model::ArchParams;
use mcds_workloads::mpeg::{mpeg_app, mpeg_schedule};
use mcds_workloads::table1::table1_experiments;

fn dual(arch: &ArchParams) -> ArchParams {
    arch.to_builder().fb_cross_set_access(true).build()
}

/// The dual-ported FB never makes any Table 1 experiment slower, and
/// strictly helps wherever cross-set sharing exists.
#[test]
fn dual_port_dominates_m1_on_every_experiment() {
    let mut strictly_better = 0;
    for e in table1_experiments() {
        let m1 = CdsScheduler::new()
            .plan(&e.app, &e.sched, &e.arch)
            .expect("fits");
        let dual_arch = dual(&e.arch);
        let ext = CdsScheduler::new()
            .plan(&e.app, &e.sched, &dual_arch)
            .expect("fits");
        let t_m1 = evaluate(&m1, &e.arch).expect("runs");
        let t_ext = evaluate(&ext, &dual_arch).expect("runs");
        assert!(
            t_ext.total() <= t_m1.total(),
            "{}: dual-ported FB slowed execution",
            e.name
        );
        assert!(
            ext.dt_avoided_per_iter() >= m1.dt_avoided_per_iter(),
            "{}",
            e.name
        );
        if t_ext.total() < t_m1.total() {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better >= 6,
        "cross-set retention must strictly help the MPEG/ATR rows, helped {strictly_better}"
    );
}

/// On MPEG the quantisation matrix (shared by Q and IQ across sets)
/// becomes retainable.
#[test]
fn mpeg_qmat_retained_cross_set() {
    let app = mpeg_app(24).expect("valid");
    let sched = mpeg_schedule(&app).expect("valid");
    let arch = dual(&ArchParams::m1_with_fb(mcds_model::Words::kilo(2)));
    let plan = CdsScheduler::new().plan(&app, &sched, &arch).expect("fits");
    let names: Vec<&str> = plan
        .retention()
        .candidates()
        .iter()
        .map(|c| app.data_object(c.data()).name())
        .collect();
    assert!(names.contains(&"qmat"), "retained: {names:?}");
    assert!(
        plan.retention()
            .candidates()
            .iter()
            .any(|c| c.is_cross_set()),
        "at least one retention must span sets"
    );
    // The allocation walk placed everything without splits.
    assert_eq!(plan.allocation().splits(), 0);
}

/// Scheduler dominance still holds under the extension, and the code
/// generator handles cross-set plans.
#[test]
fn dominance_and_codegen_under_extension() {
    let app = mpeg_app(16).expect("valid");
    let sched = mpeg_schedule(&app).expect("valid");
    let arch = dual(&ArchParams::m1_with_fb(mcds_model::Words::kilo(2)));
    let cmp = Comparison::run(&app, &sched, &arch);
    let (_, basic) = cmp.basic.as_ref().expect("feasible");
    let (_, ds) = cmp.ds.as_ref().expect("feasible");
    let (cds_plan, cds) = cmp.cds.as_ref().expect("feasible");
    assert!(ds.total() <= basic.total());
    assert!(cds.total() <= ds.total());

    let prog = generate_program(&app, &sched, cds_plan).expect("generates");
    // The retained qmat must not be re-DMAed in the steady round at its
    // skipper stages: count DmaIns for it.
    let qmat = app
        .data()
        .iter()
        .find(|d| d.name() == "qmat")
        .expect("exists")
        .id();
    let qmat_ins = prog
        .steady()
        .iter()
        .filter(|op| matches!(op, mcds_core::CodeOp::DmaIn { data, .. } if *data == qmat))
        .count();
    // One load per round (by the holder cluster) at most, per slot.
    assert!(
        qmat_ins as u64 <= cds_plan.rf(),
        "qmat loaded {qmat_ins} times in one round (rf = {})",
        cds_plan.rf()
    );
}
