//! Greedy-equivalence differential suite: a beam width of 1 makes the
//! search scheduler walk exactly one path — the TF-ranked greedy walk —
//! so `Search { beam_width: 1, .. }` must reproduce the Complete Data
//! Scheduler **byte-for-byte** over the whole Table-1 grid: same plan
//! (rf, stages, retention, ops, allocation), same simulated report,
//! same trace event stream, same error on every infeasible cell. The
//! only permitted difference is the scheduler's display name.

use std::collections::HashMap;

use mcds_core::{structure_key, Pipeline, PipelineRun, SchedulerKind, VecSink};
use mcds_model::{ArchParams, Words};
use mcds_workloads::table1::table1_experiments;

/// The architecture axis of the Table-1 sweep grid.
const FB_KILOWORDS: [u64; 4] = [1, 2, 3, 8];

const BEAM_ONE: SchedulerKind = SchedulerKind::Search {
    beam_width: 1,
    max_expansions: 10_000,
};

/// Serializes one pipeline outcome (or its error) to comparable bytes,
/// leaving the scheduler's display name out — it is the one field the
/// two schedulers are allowed to disagree on.
fn outcome_bytes(result: Result<PipelineRun, mcds_core::McdsError>) -> String {
    match result {
        Ok(run) => format!(
            "ok rf={} stages={} retention={} ops={} alloc={} report={}",
            run.plan().rf(),
            serde_json::to_string(&run.plan().stages().to_vec()).expect("serializes"),
            serde_json::to_string(run.plan().retention()).expect("serializes"),
            serde_json::to_string(run.plan().ops()).expect("serializes"),
            serde_json::to_string(run.plan().allocation()).expect("serializes"),
            serde_json::to_string(run.report()).expect("serializes"),
        ),
        // Infeasibility errors name the reporting scheduler too.
        Err(e) => format!("err {}", e.to_string().replacen("search: ", "cds: ", 1)),
    }
}

#[test]
fn beam_one_outcomes_match_cds_over_the_table1_grid() {
    // Dedupe the experiment rows by structure key, as the other
    // differential suites do — starred rows share a structure.
    let mut structures = HashMap::new();
    for e in table1_experiments() {
        structures
            .entry(structure_key(&e.app, Some(&e.sched)))
            .or_insert((e.name, e.app, e.sched));
    }
    let mut cells = 0;
    let mut feasible = 0;
    for (name, app, sched) in structures.values() {
        for fb_kw in FB_KILOWORDS {
            let arch = ArchParams::m1_with_fb(Words::kilo(fb_kw));
            let build = |kind| {
                Pipeline::new(app.clone())
                    .schedule(sched.clone())
                    .arch(arch)
                    .scheduler(kind)
            };
            let cds = outcome_bytes(build(SchedulerKind::Cds).run());
            let search = outcome_bytes(build(BEAM_ONE).run());
            assert_eq!(cds, search, "outcome diverged for {name} @ {fb_kw}K");
            cells += 1;
            if cds.starts_with("ok ") {
                feasible += 1;
            }
        }
    }
    assert_eq!(cells, structures.len() * FB_KILOWORDS.len());
    assert!(
        feasible > cells / 2,
        "most of the grid is feasible ({feasible}/{cells}) — an all-error \
         grid would make the equivalence vacuous"
    );
}

#[test]
fn beam_one_traces_match_cds_modulo_scheduler_name() {
    // The trace stream is the observable the golden suite pins, so the
    // equivalence must hold event-for-event. Events are compared as
    // JSON with the scheduler-name field normalized; a width-1 search
    // takes the greedy path without branching, so no `Search*` events
    // may appear either.
    for e in table1_experiments()
        .into_iter()
        .filter(|e| ["E1", "MPEG", "ATR-SLD"].contains(&e.name))
    {
        let trace = |kind| {
            let sink = VecSink::new();
            let _ = Pipeline::new(e.app.clone())
                .schedule(e.sched.clone())
                .arch(e.arch)
                .scheduler(kind)
                .trace(sink.clone())
                .run();
            sink.take()
                .iter()
                .map(|ev| {
                    serde_json::to_string(ev)
                        .expect("serializes")
                        .replace("\"scheduler\":\"search\"", "\"scheduler\":\"cds\"")
                })
                .collect::<Vec<String>>()
        };
        let cds = trace(SchedulerKind::Cds);
        let search = trace(BEAM_ONE);
        assert!(!cds.is_empty(), "{} produced no events", e.name);
        assert_eq!(cds, search, "trace stream diverged for {}", e.name);
        assert!(
            !search.iter().any(|l| l.contains("Search")),
            "a width-1 search must not branch, so no Search* events: {}",
            e.name
        );
    }
}
