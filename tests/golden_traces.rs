//! Golden-trace regression tests: the rendered `--explain` decision log
//! for two Table-1 workloads under every scheduler is snapshotted in
//! `tests/golden/` and must stay byte-identical.
//!
//! When a deliberate scheduler change alters the decisions, refresh the
//! snapshots with
//!
//! ```text
//! BLESS=1 cargo test -p mcds-bench --test golden_traces
//! ```
//!
//! and review the diff like any other code change.

use std::path::PathBuf;

use mcds_core::{Pipeline, SchedulerKind};
use mcds_sweep::{SweepReport, SweepSpec, SweepWorkload};
use mcds_workloads::table1::{table1_experiments, Experiment};

/// The snapshotted workloads: one small pipeline and one real-media
/// decoder, both feasible under all three schedulers at their paper
/// architecture.
const GOLDEN: [&str; 2] = ["E1", "MPEG"];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .canonicalize()
        .expect("tests/golden exists")
}

fn experiments() -> Vec<Experiment> {
    let exps: Vec<Experiment> = table1_experiments()
        .into_iter()
        .filter(|e| GOLDEN.contains(&e.name))
        .collect();
    assert_eq!(exps.len(), GOLDEN.len(), "both golden workloads found");
    exps
}

fn explain(e: &Experiment, kind: SchedulerKind) -> String {
    let (_, log) = Pipeline::new(e.app.clone())
        .arch(e.arch)
        .schedule(e.sched.clone())
        .scheduler(kind)
        .explain()
        .expect("golden workloads are feasible");
    log
}

#[test]
fn explain_logs_match_golden_snapshots() {
    let bless = std::env::var_os("BLESS").is_some();
    let dir = golden_dir();
    for e in &experiments() {
        for kind in SchedulerKind::ALL {
            let log = explain(e, kind);
            let path = dir.join(format!("{}_{kind}.txt", e.name));
            if bless {
                std::fs::write(&path, &log).expect("write snapshot");
                continue;
            }
            let want = std::fs::read_to_string(&path).unwrap_or_else(|err| {
                panic!(
                    "missing snapshot {} ({err}); run `BLESS=1 cargo test -p mcds-bench \
                     --test golden_traces` to create it",
                    path.display()
                )
            });
            assert_eq!(
                log,
                want,
                "decision log for {}/{kind} drifted from {}; if the change is \
                 intentional, refresh with BLESS=1",
                e.name,
                path.display()
            );
        }
    }
}

fn sweep_with_explains(threads: usize) -> SweepReport {
    let mut spec = SweepSpec::new()
        .capture_explain(true)
        .threads(Some(threads));
    for e in experiments() {
        spec = spec
            .arch(e.arch)
            .workload(SweepWorkload::new(e.name, e.app).partition("golden", e.sched));
    }
    spec.run().expect("sweep runs")
}

#[test]
fn sweep_traces_are_byte_identical_across_thread_counts() {
    let serial = sweep_with_explains(1);
    let serial_json = serial.to_json().expect("serializes");
    for threads in [2, 8] {
        let parallel = sweep_with_explains(threads);
        assert_eq!(
            serial_json,
            parallel.to_json().expect("serializes"),
            "captured traces must not depend on thread count ({threads} workers)"
        );
    }
    // Where a sweep cell matches an experiment's own architecture, the
    // captured trace is the exact golden log — the sweep engine and the
    // pipeline facade drive the identical instrumented path.
    let dir = golden_dir();
    let mut checked = 0;
    for e in &experiments() {
        let row = serial
            .rows
            .iter()
            .find(|r| r.workload == e.name && r.fb_set == e.arch.fb_set_words())
            .expect("cell on the grid");
        for o in &row.outcomes {
            let path = dir.join(format!("{}_{}.txt", e.name, o.scheduler));
            let Ok(want) = std::fs::read_to_string(&path) else {
                continue; // unblessed tree: the snapshot test reports it
            };
            assert_eq!(
                o.explain.as_deref(),
                Some(want.as_str()),
                "sweep-captured trace for {}/{} must equal the golden log",
                e.name,
                o.scheduler
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "at least one golden cell compared");
}
