//! Incremental-vs-from-scratch differential suite over the Table-1
//! grid: for every workload structure, the analysis front half
//! ([`Pipeline::prepare`]) runs **once**, and the resulting
//! [`PreparedSchedule`] is replayed against every (architecture,
//! scheduler) variant via [`Pipeline::run_prepared`]. Each replay must
//! be byte-identical to a from-scratch [`Pipeline::run`] — same
//! serialized outcome, same trace event stream, same error on the
//! infeasible cells — proving the memoized analysis is exactly the
//! arch-independent prefix of the pipeline and nothing more.

use std::collections::HashMap;

use mcds_core::{structure_key, Pipeline, SchedulerKind, VecSink};
use mcds_model::{ArchParams, Words};
use mcds_workloads::table1::table1_experiments;

/// The architecture axis of the Table-1 sweep grid.
const FB_KILOWORDS: [u64; 4] = [1, 2, 3, 8];

/// Serializes one pipeline outcome (or its error) to comparable bytes.
fn outcome_bytes(result: Result<mcds_core::PipelineRun, mcds_core::McdsError>) -> String {
    match result {
        // The plan is compared part-by-part through serde (not Debug):
        // the vendored serializer renders its hash sets/maps in sorted
        // order, so equal plans produce equal bytes regardless of each
        // instance's hash seeding.
        Ok(run) => format!(
            "ok schedule={} scheduler={} rf={} stages={} retention={} ops={} alloc={} report={}",
            serde_json::to_string(run.schedule()).expect("serializes"),
            run.plan().scheduler(),
            run.plan().rf(),
            serde_json::to_string(&run.plan().stages().to_vec()).expect("serializes"),
            serde_json::to_string(run.plan().retention()).expect("serializes"),
            serde_json::to_string(run.plan().ops()).expect("serializes"),
            serde_json::to_string(run.plan().allocation()).expect("serializes"),
            serde_json::to_string(run.report()).expect("serializes"),
        ),
        Err(e) => format!("err {e}"),
    }
}

#[test]
fn prepared_replay_matches_from_scratch_over_the_table1_grid() {
    // Dedupe the experiment rows by structure key — E1 and E1* (and the
    // starred ATR/MPEG rows) share a structure and must share one
    // prepared analysis, exactly as the serve analysis cache would.
    let mut structures = HashMap::new();
    for e in table1_experiments() {
        structures
            .entry(structure_key(&e.app, Some(&e.sched)))
            .or_insert((e.name, e.app, e.sched));
    }
    assert!(
        structures.len() >= 6,
        "expected at least one structure per workload family, got {}",
        structures.len()
    );

    let mut cells = 0;
    let mut feasible = 0;
    for (name, app, sched) in structures.values() {
        // One prepare per structure, at a baseline pipeline: the
        // prepared analysis must be valid for *every* arch variant.
        let prepared = Pipeline::new(app.clone())
            .schedule(sched.clone())
            .prepare()
            .expect("analysis is arch-independent and must prepare");
        for fb_kw in FB_KILOWORDS {
            let arch = ArchParams::m1_with_fb(Words::kilo(fb_kw));
            for kind in SchedulerKind::ALL {
                let build = || {
                    Pipeline::new(app.clone())
                        .schedule(sched.clone())
                        .arch(arch)
                        .scheduler(kind)
                };
                let incremental = outcome_bytes(build().run_prepared(&prepared));
                let scratch = outcome_bytes(build().run());
                assert_eq!(
                    incremental, scratch,
                    "outcome diverged for {name}/{kind} @ {fb_kw}K"
                );
                cells += 1;
                if incremental.starts_with("ok ") {
                    feasible += 1;
                }
            }
        }
    }
    assert_eq!(
        cells,
        structures.len() * FB_KILOWORDS.len() * SchedulerKind::ALL.len(),
        "every grid cell compared"
    );
    assert!(
        feasible > cells / 2,
        "most of the grid is feasible ({feasible}/{cells}) — an all-error \
         grid would make the equivalence vacuous"
    );
}

#[test]
fn prepared_replay_streams_identical_trace_events_per_cell() {
    // The trace stream is the observable the chaos and golden suites
    // pin, so equivalence must hold event-for-event, not just on the
    // final outcome. One representative workload per family keeps this
    // fast; the outcome test above covers the full grid.
    for e in table1_experiments()
        .into_iter()
        .filter(|e| ["E1", "MPEG", "ATR-SLD"].contains(&e.name))
    {
        let prepared = Pipeline::new(e.app.clone())
            .schedule(e.sched.clone())
            .prepare()
            .expect("prepares");
        for kind in SchedulerKind::ALL {
            let inc_sink = VecSink::new();
            let scratch_sink = VecSink::new();
            let _ = Pipeline::new(e.app.clone())
                .schedule(e.sched.clone())
                .arch(e.arch)
                .scheduler(kind)
                .trace(inc_sink.clone())
                .run_prepared(&prepared);
            let _ = Pipeline::new(e.app.clone())
                .schedule(e.sched.clone())
                .arch(e.arch)
                .scheduler(kind)
                .trace(scratch_sink.clone())
                .run();
            let inc = inc_sink.take();
            let scratch = scratch_sink.take();
            assert!(!scratch.is_empty(), "{}/{kind} produced no events", e.name);
            assert_eq!(inc, scratch, "trace stream diverged for {}/{kind}", e.name);
        }
    }
}
