//! The reproduction's headline claims: the *shape* of Table 1 and
//! Figure 6 holds — who wins, roughly by how much, and where the
//! feasibility boundary falls.

use mcds_bench::{measure, measure_all};
use mcds_core::{BasicScheduler, DataScheduler, ScheduleError};
use mcds_model::{ArchParams, Words};
use mcds_workloads::mpeg::{mpeg_app, mpeg_schedule};
use mcds_workloads::table1::table1_experiments;

/// CDS never loses to DS, and DS never loses to Basic, on any row.
#[test]
fn figure6_ordering_holds_on_every_row() {
    for m in measure_all() {
        if let (Some(ds), Some(cds)) = (m.row.ds_improvement, m.row.cds_improvement) {
            assert!(ds >= -1e-9, "{}: DS slower than Basic ({ds})", m.row.name);
            assert!(
                cds >= ds - 1e-9,
                "{}: CDS ({cds}) lost to DS ({ds})",
                m.row.name
            );
        }
    }
}

/// Every measured RF is within ±2 of the paper's reported RF (where
/// legible), and the memory-sweep rows strictly increase RF.
#[test]
fn rf_values_track_the_paper() {
    let rows = measure_all();
    let rf = |name: &str| {
        rows.iter()
            .find(|m| m.row.name == name)
            .expect("row exists")
            .row
            .rf
    };
    assert_eq!(rf("E1"), 1);
    assert_eq!(rf("E1*"), 3);
    assert!((2..=5).contains(&rf("E2")), "E2 rf = {}", rf("E2"));
    assert!((9..=13).contains(&rf("E3")), "E3 rf = {}", rf("E3"));
    assert_eq!(rf("MPEG"), 2);
    assert!(rf("MPEG*") > rf("MPEG"));
    assert_eq!(rf("ATR-SLD"), 1);
    assert_eq!(rf("ATR-SLD*"), 1);
    assert_eq!(rf("ATR-SLD**"), 1);
    assert!(rf("ATR-FI*") > rf("ATR-FI"));
}

/// Where the paper reports a CDS improvement, our measured value is
/// within 15 percentage points (except ATR-SLD*, whose exact kernel
/// schedule is unpublished — we only require a large gap over DS
/// there).
#[test]
fn cds_improvements_are_paper_shaped() {
    for m in measure_all() {
        let (Some(paper), Some(ours)) = (m.paper_cds, m.row.cds_improvement) else {
            continue;
        };
        if m.row.name == "ATR-SLD*" {
            let ds = m.row.ds_improvement.expect("ds ran");
            assert!(
                ours - ds > 0.2,
                "ATR-SLD*: CDS must dominate DS by a wide margin ({ds} vs {ours})"
            );
            continue;
        }
        assert!(
            (ours - paper).abs() <= 0.15,
            "{}: measured CDS {ours:.2} vs paper {paper:.2}",
            m.row.name
        );
    }
}

/// RF = 1 rows show DS == Basic (the mechanism reproduced here gains
/// only through loop fission), and their CDS gains come purely from
/// retention.
#[test]
fn rf1_rows_separate_the_mechanisms() {
    for m in measure_all() {
        if m.row.rf == 1 {
            let ds = m.row.ds_improvement.expect("ds ran");
            assert!(
                ds.abs() < 1e-9,
                "{}: DS must equal Basic at RF=1, got {ds}",
                m.row.name
            );
        }
    }
}

/// §6: "Basic Scheduler cannot execute MPEG if memory size is 1K.
/// Whereas, the Data Scheduler and the Complete Data Scheduler achieve
/// MPEG execution with memory size less than 1K."
#[test]
fn mpeg_feasibility_boundary() {
    let app = mpeg_app(8).expect("valid");
    let sched = mpeg_schedule(&app).expect("valid");
    let at_1k = ArchParams::m1_with_fb(Words::kilo(1));
    assert!(matches!(
        BasicScheduler::new().plan(&app, &sched, &at_1k),
        Err(ScheduleError::Infeasible { .. })
    ));
    // DS/CDS run even slightly below 1K.
    let under_1k = ArchParams::m1_with_fb(Words::new(1000));
    let cmp = mcds_core::Comparison::run(&app, &sched, &under_1k);
    assert!(cmp.ds.is_ok(), "DS must run below 1K");
    assert!(cmp.cds.is_ok(), "CDS must run below 1K");
}

/// DT: the CDS's avoided traffic matches the workload design — large
/// for ATR-SLD (templates), small for ATR-FI.
#[test]
fn dt_magnitudes() {
    let rows = measure_all();
    let dt = |name: &str| {
        rows.iter()
            .find(|m| m.row.name == name)
            .expect("row exists")
            .row
            .dt_avoided
    };
    assert!(
        dt("ATR-SLD*") >= Words::kilo(6),
        "ATR-SLD* DT = {}",
        dt("ATR-SLD*")
    );
    assert!(
        dt("ATR-FI") <= Words::new(512),
        "ATR-FI DT = {}",
        dt("ATR-FI")
    );
    assert!(dt("E1") == Words::new(800), "E1 DT = {}", dt("E1"));
}

/// The experiment registry's own consistency: measuring a single
/// experiment equals the corresponding row of measure_all.
#[test]
fn single_measurement_matches_batch() {
    let exps = table1_experiments();
    let single = measure(&exps[0]);
    let batch = measure_all();
    assert_eq!(single.row, batch[0].row);
}
