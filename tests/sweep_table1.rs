//! The `mcds sweep` acceptance grid: the Table-1 design space evaluated
//! in parallel, deterministically.

use mcds_bench::table1_sweep;
use mcds_core::SchedulerKind;

#[test]
fn table1_grid_exceeds_fifty_points() {
    let spec = table1_sweep(&[1, 2, 3, 8], false);
    assert!(
        spec.points() >= 50,
        "grid has only {} points",
        spec.points()
    );
    // 6 workloads, 9 partitions total (ATR-SLD has 3, ATR-FI has 2),
    // 4 architectures, 3 schedulers.
    assert_eq!(spec.points(), 9 * 4 * 3);
}

#[test]
fn table1_sweep_is_deterministic_across_thread_counts() {
    let fb = [1u64, 2, 8];
    let serial = table1_sweep(&fb, false)
        .threads(Some(1))
        .run()
        .expect("runs");
    let parallel = table1_sweep(&fb, false)
        .threads(Some(8))
        .run()
        .expect("runs");
    assert_eq!(
        serial.to_json().expect("serializes"),
        parallel.to_json().expect("serializes")
    );
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.points(), 9 * 3 * 3);
}

#[test]
fn table1_sweep_reproduces_known_feasibility_shape() {
    let report = table1_sweep(&[1, 2], false).run().expect("runs");
    // MPEG@1K: Basic infeasible (the paper's headline boundary), CDS ok.
    let mpeg_1k = report
        .rows
        .iter()
        .find(|r| r.workload == "MPEG" && r.fb_set.get() == 1024)
        .expect("cell exists");
    assert!(!mpeg_1k.row.basic_feasible);
    let cds = mpeg_1k
        .outcomes
        .iter()
        .find(|o| o.scheduler == SchedulerKind::Cds)
        .expect("on the axis");
    assert!(cds.total_cycles.is_some(), "CDS runs MPEG in 1K: {cds:?}");
    // E1@2K (the paper's E1* row): everything feasible, CDS ahead.
    let e1_2k = report
        .rows
        .iter()
        .find(|r| r.workload == "E1" && r.fb_set.get() == 2048)
        .expect("cell exists");
    assert!(e1_2k.row.basic_feasible);
    assert!(e1_2k.row.cds_improvement.expect("ran") > 0.0);
}
