//! End-to-end integration: information extraction → kernel scheduling →
//! context scheduling → data scheduling → allocation → simulation, all
//! driven through the public APIs of the workspace crates.

use mcds_core::{evaluate, BasicScheduler, CdsScheduler, Comparison, DataScheduler, DsScheduler};
use mcds_ksched::{KernelScheduler, SearchStrategy};
use mcds_model::{ApplicationBuilder, ArchParams, Cycles, DataKind, Words};
use mcds_workloads::mpeg::{mpeg_app, mpeg_schedule};
use mcds_workloads::synthetic::{SyntheticConfig, SyntheticGenerator};

/// The full compilation pipeline on a hand-written application, letting
/// the kernel scheduler pick the clusters.
#[test]
fn full_pipeline_with_kernel_scheduler() {
    let mut b = ApplicationBuilder::new("dsp-chain");
    let coeffs = b.data("coeffs", Words::new(96), DataKind::ExternalInput);
    let mut carry = b.data("input", Words::new(160), DataKind::ExternalInput);
    for i in 0..5 {
        let kind = if i == 4 {
            DataKind::FinalResult
        } else {
            DataKind::Intermediate
        };
        let out = b.data(format!("s{i}"), Words::new(160), kind);
        let inputs = if i % 2 == 0 {
            vec![carry, coeffs]
        } else {
            vec![carry]
        };
        b.kernel(format!("stage{i}"), 128, Cycles::new(220), &inputs, &[out]);
        carry = out;
    }
    let app = b.iterations(32).build().expect("valid app");
    let arch = ArchParams::m1();

    // Kernel scheduler explores partitions.
    let sched = KernelScheduler::new(SearchStrategy::Exhaustive)
        .schedule(&app, &arch)
        .expect("feasible partition exists");

    // All three data schedulers produce valid plans that simulate.
    let basic = BasicScheduler::new()
        .plan(&app, &sched, &arch)
        .expect("basic plan");
    let ds = DsScheduler::new()
        .plan(&app, &sched, &arch)
        .expect("ds plan");
    let cds = CdsScheduler::new()
        .plan(&app, &sched, &arch)
        .expect("cds plan");

    let t_basic = evaluate(&basic, &arch).expect("basic runs");
    let t_ds = evaluate(&ds, &arch).expect("ds runs");
    let t_cds = evaluate(&cds, &arch).expect("cds runs");

    assert!(t_ds.total() <= t_basic.total());
    assert!(t_cds.total() <= t_ds.total());

    // Conservation: every scheduler moves the final results out.
    let finals: Words = app
        .data()
        .iter()
        .filter(|d| d.kind() == DataKind::FinalResult)
        .map(|d| d.size() * app.iterations())
        .sum();
    for report in [&t_basic, &t_ds, &t_cds] {
        assert!(report.data_words_stored() >= finals);
    }
}

/// The MPEG pipeline through `Comparison`, checking the sim-level
/// accounting against the plan-level accounting.
#[test]
fn plan_and_simulation_volumes_agree() {
    let app = mpeg_app(24).expect("valid");
    let sched = mpeg_schedule(&app).expect("valid");
    let arch = ArchParams::m1_with_fb(Words::kilo(2));
    let cmp = Comparison::run(&app, &sched, &arch);
    for result in [&cmp.basic, &cmp.ds, &cmp.cds] {
        let (plan, report) = result.as_ref().expect("feasible at 2K");
        assert_eq!(
            plan.total_data_words(),
            report.data_words_total(),
            "{}: plan and simulator disagree on data volume",
            plan.scheduler()
        );
        assert_eq!(plan.total_context_words(), report.context_words_loaded());
        assert_eq!(plan.ops().data_words_loaded(), report.data_words_loaded());
    }
}

/// Retention reduces simulated traffic by exactly the avoided volume.
#[test]
fn cds_traffic_reduction_matches_dt() {
    let app = mpeg_app(24).expect("valid");
    let sched = mpeg_schedule(&app).expect("valid");
    let arch = ArchParams::m1_with_fb(Words::kilo(2));
    let cmp = Comparison::run(&app, &sched, &arch);
    let (ds_plan, ds_report) = cmp.ds.as_ref().expect("feasible");
    let (cds_plan, cds_report) = cmp.cds.as_ref().expect("feasible");
    if cds_plan.rf() == ds_plan.rf() {
        let saved = ds_report.data_words_total() - cds_report.data_words_total();
        assert_eq!(
            saved,
            cds_plan.dt_avoided_per_iter() * app.iterations(),
            "traffic saved must equal DT × iterations"
        );
    }
}

/// Random applications survive the full pipeline across many seeds.
#[test]
fn synthetic_sweep_end_to_end() {
    for seed in 0..30 {
        let cfg = SyntheticConfig {
            clusters: 5,
            iterations: 12,
            ..SyntheticConfig::default()
        };
        let (app, sched) = SyntheticGenerator::new(seed)
            .generate(&cfg)
            .expect("generator emits valid apps");
        let arch = ArchParams::m1_with_fb(Words::kilo(4));
        let cmp = Comparison::run(&app, &sched, &arch);
        let (_, basic) = cmp.basic.as_ref().expect("4K fits default sizes");
        let (ds_plan, ds) = cmp.ds.as_ref().expect("ds");
        let (cds_plan, cds) = cmp.cds.as_ref().expect("cds");
        assert!(ds.total() <= basic.total(), "seed {seed}");
        assert!(cds.total() <= ds.total(), "seed {seed}");
        assert!(ds_plan.rf() >= 1);
        // Random workloads may fragment (splitting is the allocator's
        // legal last resort); it must stay rare relative to the number
        // of placements.
        let alloc = cds_plan.allocation();
        assert!(
            alloc.splits() * 10 <= alloc.allocs(),
            "seed {seed}: {} splits out of {} allocations",
            alloc.splits(),
            alloc.allocs()
        );
    }
}
