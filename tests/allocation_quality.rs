//! §6 allocation-quality claims: "the memory size used is the minimum
//! allowed by the architecture", "for all examples no data or result
//! has to be split into several parts", and the placement "promotes
//! regularity".

use mcds_core::{
    cluster_peak, AllocationWalk, CdsScheduler, DataScheduler, FootprintModel, Lifetimes,
    RetentionSet,
};
use mcds_model::Words;
use mcds_workloads::table1::table1_experiments;

/// No experiment's allocation ever splits an object across free blocks.
#[test]
fn no_splits_in_any_experiment() {
    for e in table1_experiments() {
        let plan = match CdsScheduler::new().plan(&e.app, &e.sched, &e.arch) {
            Ok(p) => p,
            Err(err) => panic!("{}: CDS must run: {err}", e.name),
        };
        assert_eq!(
            plan.allocation().splits(),
            0,
            "{}: split allocations",
            e.name
        );
    }
}

/// Allocator peaks stay within the Frame Buffer and within the analytic
/// footprint bound of the worst cluster.
#[test]
fn peaks_bounded_by_analysis() {
    for e in table1_experiments() {
        let plan = CdsScheduler::new()
            .plan(&e.app, &e.sched, &e.arch)
            .expect("runs");
        let lt = Lifetimes::analyze(&e.app, &e.sched);
        let bound: Words = e
            .sched
            .clusters()
            .iter()
            .map(|c| {
                cluster_peak(
                    &e.app,
                    &e.sched,
                    &lt,
                    plan.retention(),
                    c.id(),
                    plan.rf(),
                    FootprintModel::Replacement,
                )
            })
            .max()
            .expect("non-empty");
        for peak in plan.allocation().peak() {
            assert!(
                peak <= e.arch.fb_set_words(),
                "{}: peak {peak} exceeds the set",
                e.name
            );
            assert!(
                peak <= bound,
                "{}: allocator peak {peak} exceeds analytic bound {bound}",
                e.name
            );
        }
    }
}

/// Regularity: across rounds, placements land on their previous
/// iteration's addresses (no irregular placements on the paper-scale
/// experiments).
#[test]
fn steady_state_placements_are_regular() {
    for e in table1_experiments() {
        let plan = CdsScheduler::new()
            .plan(&e.app, &e.sched, &e.arch)
            .expect("runs");
        let report = plan.allocation();
        assert_eq!(
            report.irregular(),
            0,
            "{}: {} irregular placements",
            e.name,
            report.irregular()
        );
        // At least one full extra round was walked, so regular hits
        // must have occurred.
        assert!(
            report.regular_hits() > 0,
            "{}: no regular placements",
            e.name
        );
    }
}

/// The allocation walk is deterministic: two runs produce identical
/// reports.
#[test]
fn allocation_walk_is_deterministic() {
    let e = &table1_experiments()[0];
    let plan = CdsScheduler::new()
        .plan(&e.app, &e.sched, &e.arch)
        .expect("runs");
    let lt = Lifetimes::analyze(&e.app, &e.sched);
    let run = || {
        AllocationWalk::new(
            &e.app,
            &e.sched,
            &lt,
            plan.retention(),
            plan.rf(),
            e.arch.fb_set_words(),
            FootprintModel::Replacement,
        )
        .run(2, false)
        .expect("fits")
    };
    assert_eq!(run(), run());
}

/// Without retention the walk needs no more memory than with the
/// no-replacement model — replacement frees space, retention fills it
/// deliberately.
#[test]
fn replacement_only_shrinks_requirements() {
    for e in table1_experiments().iter().take(6) {
        let lt = Lifetimes::analyze(&e.app, &e.sched);
        let empty = RetentionSet::empty();
        let fbs = e.arch.fb_set_words();
        let repl = AllocationWalk::new(
            &e.app,
            &e.sched,
            &lt,
            &empty,
            1,
            fbs,
            FootprintModel::Replacement,
        )
        .run(1, false);
        let basic = AllocationWalk::new(
            &e.app,
            &e.sched,
            &lt,
            &empty,
            1,
            fbs,
            FootprintModel::NoReplacement,
        )
        .run(1, false);
        let repl = repl.expect("replacement fits wherever the schedulers ran");
        if let Ok(basic) = basic {
            for (r, b) in repl.peak().iter().zip(basic.peak()) {
                assert!(*r <= b, "{}: replacement peak above basic peak", e.name);
            }
        }
    }
}
